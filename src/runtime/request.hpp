/**
 * @file
 * Request/result types for the concurrent inference runtime.
 *
 * A request carries one input image plus the per-request knobs that
 * make execution order-independent: the SNN encoder seed travels with
 * the request (not with the chip), so a request produces bit-identical
 * output no matter which worker replica serves it or in which order.
 */

#ifndef NEBULA_RUNTIME_REQUEST_HPP
#define NEBULA_RUNTIME_REQUEST_HPP

#include <chrono>
#include <cstdint>
#include <future>

#include "nn/tensor.hpp"

namespace nebula {

/** One inference request submitted to the engine. */
struct InferenceRequest
{
    uint64_t id = 0;     //!< engine-assigned, monotonically increasing
    Tensor image;        //!< (C, H, W) input in [0, 1]
    int timesteps = 0;   //!< SNN/hybrid evidence window (0: engine default)
    uint64_t seed = 0;   //!< SNN/hybrid encoder seed (0: derived from id)
};

/** The completed inference for one request. */
struct InferenceResult
{
    uint64_t id = 0;
    Tensor logits;            //!< (1, classes) output (SNN: accumulated)
    int predictedClass = -1;
    int workerId = -1;        //!< serving worker (-1: inline mode)
    double queueSeconds = 0.0;   //!< time spent waiting in the queue
    double serviceSeconds = 0.0; //!< time spent on the chip replica
    // -- mode-specific extras -------------------------------------------
    int timesteps = 0;        //!< SNN/hybrid steps actually run
    long long spikes = 0;     //!< SNN/hybrid spike count (0 for ANN)
};

/** A queued request together with its delivery channel. */
struct QueueItem
{
    InferenceRequest request;
    std::promise<InferenceResult> promise;
    std::chrono::steady_clock::time_point enqueued;
};

/**
 * Deterministic per-request seed derivation (SplitMix64 finalizer over
 * the salted id). Exposed so a sequential reference run can reproduce
 * the exact seeds the engine hands its workers.
 */
inline uint64_t
deriveRequestSeed(uint64_t salt, uint64_t id)
{
    uint64_t z = salt + (id + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace nebula

#endif // NEBULA_RUNTIME_REQUEST_HPP
