/**
 * @file
 * Request/result types for the concurrent inference runtime.
 *
 * A request carries one input image plus the per-request knobs that
 * make execution order-independent: the SNN encoder seed travels with
 * the request (not with the chip), so a request produces bit-identical
 * output no matter which worker replica serves it or in which order.
 *
 * Lifecycle hardening: a request may carry a deadline (a latency budget
 * measured from submit) and a cancel flag; both are honoured at dequeue
 * -- an expired or cancelled request is shed without evaluation and its
 * future resolves to a typed terminal outcome (RuntimeErrorKind) inside
 * the result, never a broken promise.
 */

#ifndef NEBULA_RUNTIME_REQUEST_HPP
#define NEBULA_RUNTIME_REQUEST_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "arch/energy_breakdown.hpp"
#include "nn/tensor.hpp"
#include "runtime/error.hpp"

namespace nebula {

/**
 * Shared cancellation flag: the submitter keeps one reference, the
 * request another; store(true) makes a still-queued request resolve to
 * Cancelled at dequeue instead of being evaluated.
 */
using CancelFlag = std::shared_ptr<std::atomic<bool>>;

/** One inference request submitted to the engine. */
struct InferenceRequest
{
    uint64_t id = 0;     //!< engine-assigned, monotonically increasing
    Tensor image;        //!< (C, H, W) input in [0, 1]
    int timesteps = 0;   //!< SNN/hybrid evidence window (0: engine default)
    uint64_t seed = 0;   //!< SNN/hybrid encoder seed (0: derived from id)

    /**
     * Latency budget from submit (ns); 0 selects the engine default
     * (EngineConfig::defaultDeadlineNs, itself 0 = no deadline). A
     * request whose budget has lapsed before a worker picks it up is
     * shed with a Timeout outcome; deadline-aware admission control can
     * also shed it at submit when the predicted queue wait alone would
     * blow the budget.
     */
    uint64_t deadlineNs = 0;

    /** Optional cancellation flag (null: not cancellable). */
    CancelFlag cancel;

    /**
     * Distributed trace context (Perfetto flow id), 0 when absent. The
     * serving layer copies it from the wire frame header so client
     * submit, server dispatch and worker evaluation emit flow events
     * under one id; the engine passes it through untouched.
     */
    uint64_t traceId = 0;
};

/**
 * Per-request ABFT verdict, aggregated over every crossbar evaluation
 * the request touched (zero everywhere on functional backends or when
 * NebulaConfig::abft is off). A nonzero violation count means at least
 * one layer's checksum-column comparison exceeded its tolerance while
 * serving this request -- the logits may be silently corrupt. When the
 * worker transparently re-executed the request on its fallback replica,
 * reExecuted is set and the counts describe the *final* (fallback) run.
 */
struct IntegrityReport
{
    long long checks = 0;     //!< checksum comparisons performed
    long long violations = 0; //!< comparisons exceeding tolerance
    bool reExecuted = false;  //!< result comes from a fallback re-run

    /** True when any ABFT comparison ran for this request. */
    bool checked() const { return checks > 0; }

    /** True when no comparison flagged corruption. */
    bool clean() const { return violations == 0; }
};

/** The completed inference for one request. */
struct InferenceResult
{
    uint64_t id = 0;
    Tensor logits;            //!< (1, classes) output (SNN: accumulated)
    int predictedClass = -1;
    int workerId = -1;        //!< serving worker (-1: inline mode)
    double queueSeconds = 0.0;   //!< time spent waiting in the queue
    double serviceSeconds = 0.0; //!< time spent on the chip replica
    // -- typed terminal outcome -----------------------------------------
    RuntimeErrorKind error = RuntimeErrorKind::None;
    std::string errorMessage; //!< human-readable detail (empty when ok)
    // -- mode-specific extras -------------------------------------------
    int timesteps = 0;        //!< SNN/hybrid steps actually run
    long long spikes = 0;     //!< SNN/hybrid spike count (0 for ANN)

    /**
     * Joules this inference spent on the chip replica, by component
     * (all zero on functional/hybrid backends and on errors). The
     * serving layer bills these to per-tenant telemetry counters.
     */
    EnergyBreakdown energy;

    /** ABFT verdict for this request (see IntegrityReport). */
    IntegrityReport integrity;

    /** True when the request was evaluated and the logits are valid. */
    bool ok() const { return error == RuntimeErrorKind::None; }
};

/** A queued request together with its delivery channel. */
struct QueueItem
{
    InferenceRequest request;
    std::promise<InferenceResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline; //!< absolute form
    bool hasDeadline = false;
};

/**
 * Deterministic per-request seed derivation (SplitMix64 finalizer over
 * the salted id). Exposed so a sequential reference run can reproduce
 * the exact seeds the engine hands its workers.
 */
inline uint64_t
deriveRequestSeed(uint64_t salt, uint64_t id)
{
    uint64_t z = salt + (id + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace nebula

#endif // NEBULA_RUNTIME_REQUEST_HPP
