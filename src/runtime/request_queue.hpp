/**
 * @file
 * Bounded multi-producer / multi-consumer queue feeding the worker
 * pool. A full queue exerts backpressure: blocking push() parks the
 * producer, tryPush() refuses and leaves the item with the caller so
 * it can shed load instead. close() wakes every waiter; consumers
 * drain the remaining items before seeing end-of-stream.
 */

#ifndef NEBULA_RUNTIME_REQUEST_QUEUE_HPP
#define NEBULA_RUNTIME_REQUEST_QUEUE_HPP

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace nebula {

/** Bounded MPMC queue of move-only items. */
template <typename T> class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity)
        : capacity_(std::max<size_t>(1, capacity))
    {
    }

    /**
     * Block until there is room, then enqueue.
     * @return false (item discarded) if the queue was closed.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        highWater_ = std::max(highWater_, items_.size());
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Enqueue only if there is room right now.
     * @return false if full or closed; @p item is left untouched.
     */
    bool
    tryPush(T &item)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(item));
        highWater_ = std::max(highWater_, items_.size());
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Block until an item is available and dequeue it.
     * @return nullopt once the queue is closed and fully drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return item;
    }

    /**
     * Dequeue only if an item is available right now (never blocks).
     * Used by the batch gatherer to drain already-queued requests into
     * a micro-batch with no added wait.
     * @return false when the queue is empty (closed or not).
     */
    bool
    tryPop(T &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return true;
    }

    /**
     * Block until an item is available or @p deadline passes (or the
     * queue closes while empty). The batch gatherer bounds its wait by
     * the batching window and the earliest held request deadline.
     * @return false on timeout or closed-and-empty; @p out untouched.
     */
    bool
    popUntil(T &out, std::chrono::steady_clock::time_point deadline)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait_until(lock, deadline, [&] {
            return closed_ || !items_.empty();
        });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return true;
    }

    /** Remove and return every pending item (used by hard shutdown). */
    std::vector<T>
    drain()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<T> pending;
        pending.reserve(items_.size());
        while (!items_.empty()) {
            pending.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        notFull_.notify_all();
        return pending;
    }

    /** Refuse new items and wake every blocked producer/consumer. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    /** Deepest occupancy observed since construction. */
    size_t
    highWater() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return highWater_;
    }

    size_t capacity() const { return capacity_; }

  private:
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    size_t capacity_;
    size_t highWater_ = 0;
    bool closed_ = false;
};

} // namespace nebula

#endif // NEBULA_RUNTIME_REQUEST_QUEUE_HPP
