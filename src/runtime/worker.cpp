#include "runtime/worker.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace nebula {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start,
             std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double>(end - start).count();
}

// Latency histogram shape shared by all workers so the engine-level
// merge is bin-exact: 0..250 ms in 500 half-ms buckets.
constexpr double kLatencyLoMs = 0.0;
constexpr double kLatencyHiMs = 250.0;
constexpr int kLatencyBuckets = 500;

} // namespace

Worker::Worker(int id, std::unique_ptr<ChipReplica> replica,
               BoundedQueue<QueueItem> *queue,
               std::function<void()> on_complete, bool trace_requests)
    : id_(id), replica_(std::move(replica)), queue_(queue),
      onComplete_(std::move(on_complete)), traceRequests_(trace_requests),
      stats_("worker" + std::to_string(id))
{
}

void
Worker::start()
{
    thread_ = std::thread([this] { loop(); });
}

void
Worker::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
Worker::loop()
{
    obs::setThreadName("worker" + std::to_string(id_));
    NEBULA_DEBUG("runtime", "worker", id_, " started");
    while (auto item = queue_->pop()) {
        const auto start = std::chrono::steady_clock::now();
        const double wait = secondsSince(item->enqueued, start);
        // The request span is a sampling root: TraceConfig::sampleEvery
        // applies to it and suppresses the chip/noc spans nested inside
        // replica_->run() when this request is sampled out. Queue wait
        // is attached as an arg (not a span) so per-thread timestamps
        // stay monotonic.
        obs::TraceSpan span("runtime", "request", traceRequests_,
                            /*sampled_root=*/true);
        span.arg("id", static_cast<double>(item->request.id));
        span.arg("wait_ms", 1e3 * wait);
        obs::recordCounter("queue.depth",
                           static_cast<double>(queue_->size()),
                           traceRequests_);
        try {
            InferenceResult result = replica_->run(item->request);
            const auto end = std::chrono::steady_clock::now();
            result.id = item->request.id;
            result.workerId = id_;
            result.queueSeconds = wait;
            result.serviceSeconds = secondsSince(start, end);
            span.arg("service_ms", 1e3 * result.serviceSeconds);

            stats_.scalar("requests").inc();
            stats_.scalar("latency_ms").sample(
                1e3 * (wait + result.serviceSeconds));
            stats_.scalar("service_ms").sample(1e3 * result.serviceSeconds);
            stats_.scalar("wait_ms").sample(1e3 * wait);
            stats_
                .histogram("latency_ms.hist", kLatencyLoMs, kLatencyHiMs,
                           kLatencyBuckets)
                .sample(1e3 * (wait + result.serviceSeconds));
            stats_
                .histogram("service_ms.hist", kLatencyLoMs, kLatencyHiMs,
                           kLatencyBuckets)
                .sample(1e3 * result.serviceSeconds);
            stats_
                .histogram("wait_ms.hist", kLatencyLoMs, kLatencyHiMs,
                           kLatencyBuckets)
                .sample(1e3 * wait);
            stats_.scalar("spikes").add(
                static_cast<double>(result.spikes));

            item->promise.set_value(std::move(result));
        } catch (...) {
            stats_.scalar("failures").inc();
            obs::recordInstant("runtime", "request.failed",
                               traceRequests_);
            item->promise.set_exception(std::current_exception());
        }
        onComplete_();
    }
    NEBULA_DEBUG("runtime", "worker", id_, " draining done, exiting");
}

} // namespace nebula
