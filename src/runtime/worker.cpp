#include "runtime/worker.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reliability/health.hpp"

namespace nebula {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start,
             std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double>(end - start).count();
}

// Latency histogram shape shared by all workers so the engine-level
// merge is bin-exact: 0..250 ms in 500 half-ms buckets.
constexpr double kLatencyLoMs = 0.0;
constexpr double kLatencyHiMs = 250.0;
constexpr int kLatencyBuckets = 500;

// Batch-size histogram shape, likewise shared for bin-exact merges.
constexpr double kBatchLo = 0.0;
constexpr double kBatchHi = 64.0;
constexpr int kBatchBuckets = 64;

bool
sameShape(const Tensor &a, const Tensor &b)
{
    if (a.rank() != b.rank())
        return false;
    for (int d = 0; d < a.rank(); ++d)
        if (a.dim(d) != b.dim(d))
            return false;
    return true;
}

} // namespace

Worker::Worker(int id, std::unique_ptr<ChipReplica> replica,
               BoundedQueue<QueueItem> *queue, WorkerHooks hooks)
    : id_(id), replica_(std::move(replica)), queue_(queue),
      hooks_(std::move(hooks)), stats_("worker" + std::to_string(id)),
      requestsStat_(stats_.scalar("requests")),
      latencyStat_(stats_.scalar("latency_ms")),
      serviceStat_(stats_.scalar("service_ms")),
      waitStat_(stats_.scalar("wait_ms")),
      spikesStat_(stats_.scalar("spikes")),
      latencyHist_(stats_.histogram("latency_ms.hist", kLatencyLoMs,
                                    kLatencyHiMs, kLatencyBuckets)),
      serviceHist_(stats_.histogram("service_ms.hist", kLatencyLoMs,
                                    kLatencyHiMs, kLatencyBuckets)),
      waitHist_(stats_.histogram("wait_ms.hist", kLatencyLoMs,
                                 kLatencyHiMs, kLatencyBuckets))
{
}

void
Worker::start()
{
    thread_ = std::thread([this] { loop(); });
}

void
Worker::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
Worker::shedItem(QueueItem &item, RuntimeErrorKind kind,
                 std::string message, double wait_seconds)
{
    InferenceResult result;
    result.id = item.request.id;
    result.workerId = id_;
    result.queueSeconds = wait_seconds;
    result.error = kind;
    result.errorMessage = std::move(message);
    item.promise.set_value(std::move(result));
}

void
Worker::loop()
{
    obs::setThreadName("worker" + std::to_string(id_));
    NEBULA_DEBUG("runtime", "worker", id_, " started");
    while (auto item = queue_->pop()) {
        // The batch gather only engages when the engine asks for it AND
        // the current replica coalesces requests into one chip walk;
        // checked per dequeue because the supervisor / health monitor
        // may swap the replica for a non-batching fallback at any time.
        if (hooks_.maxBatch <= 1 || !replica_->supportsBatch()) {
            processItem(*item);
            continue;
        }

        // Deadline-aware gather window: hold the first request for at
        // most maxWaitUs while draining more, but never into the
        // earliest deadline among the requests already held -- the
        // window closes a slack margin (estimated flush time plus a
        // slice of the remaining budget) BEFORE that deadline, so a
        // held request always flushes with time left to evaluate and
        // is never pushed past its deadline by the gather itself.
        const auto gather_start = std::chrono::steady_clock::now();
        auto deadline_cap = [&](std::chrono::steady_clock::time_point
                                    deadline) {
            const double remaining =
                std::max(0.0, secondsSince(gather_start, deadline));
            const double slack = std::max(
                {2.0 * flushEwmaSec_, 0.1 * remaining, 100e-6});
            return deadline -
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(slack));
        };
        auto window_end =
            gather_start + std::chrono::microseconds(hooks_.maxWaitUs);
        if (item->hasDeadline)
            window_end = std::min(window_end, deadline_cap(item->deadline));

        std::vector<QueueItem> batch;
        batch.reserve(static_cast<size_t>(hooks_.maxBatch));
        batch.push_back(std::move(*item));
        while (static_cast<int>(batch.size()) < hooks_.maxBatch) {
            QueueItem next;
            if (queue_->tryPop(next)) {
                if (next.hasDeadline)
                    window_end =
                        std::min(window_end, deadline_cap(next.deadline));
                batch.push_back(std::move(next));
                continue;
            }
            if (std::chrono::steady_clock::now() >= window_end)
                break;
            if (!queue_->popUntil(next, window_end))
                break; // window elapsed, or closed and drained
            if (next.hasDeadline)
                window_end =
                    std::min(window_end, deadline_cap(next.deadline));
            batch.push_back(std::move(next));
        }

        if (batch.size() == 1)
            processItem(batch.front());
        else
            processBatch(batch);
    }
    NEBULA_DEBUG("runtime", "worker", id_, " draining done, exiting");
}

void
Worker::processItem(QueueItem &item)
{
    const auto start = std::chrono::steady_clock::now();
    const double wait = secondsSince(item.enqueued, start);

    // Non-evaluated terminal outcomes, checked at dequeue: a
    // cancelled or expired request is shed without touching the
    // replica -- under overload this is what keeps the tail of the
    // queue from wasting chip time on answers nobody can use.
    if (item.request.cancel &&
        item.request.cancel->load(std::memory_order_acquire)) {
        stats_.scalar("cancelled").inc();
        obs::MetricsRegistry::global().counter("runtime.cancelled").inc();
        obs::recordInstant("runtime", "request.cancelled",
                           hooks_.traceRequests);
        shedItem(item, RuntimeErrorKind::Cancelled,
                 "request cancelled before evaluation", wait);
        hooks_.onComplete(-1.0);
        return;
    }
    if (item.hasDeadline && start > item.deadline) {
        stats_.scalar("timeouts").inc();
        obs::MetricsRegistry::global().counter("runtime.timeout").inc();
        obs::recordInstant("runtime", "request.timeout",
                           hooks_.traceRequests);
        shedItem(item, RuntimeErrorKind::Timeout,
                 "deadline expired in queue", wait);
        hooks_.onComplete(-1.0);
        return;
    }

    // The request span is a sampling root: TraceConfig::sampleEvery
    // applies to it and suppresses the chip/noc spans nested inside
    // replica_->run() when this request is sampled out. Queue wait
    // is attached as an arg (not a span) so per-thread timestamps
    // stay monotonic.
    obs::TraceSpan span("runtime", "request", hooks_.traceRequests,
                        /*sampled_root=*/true);
    span.arg("id", static_cast<double>(item.request.id));
    span.arg("wait_ms", 1e3 * wait);
    // Distributed-trace hop: a request carrying wire trace context
    // links its worker evaluation into the client/server flow.
    obs::recordFlowStep("runtime", "request.flow", item.request.traceId,
                        hooks_.traceRequests);
    // Sampling the queue depth takes the queue mutex: only pay for it
    // when a trace session is actually recording.
    if (hooks_.traceRequests)
        obs::recordCounter("queue.depth",
                           static_cast<double>(queue_->size()),
                           hooks_.traceRequests);
    double service = -1.0;
    bool violated = false;
    try {
        InferenceResult result = replica_->run(item.request);
        // ABFT verdict check before any bookkeeping fields are filled:
        // a hedged re-run replaces the whole result, and the service
        // time measured below then covers original + re-run honestly.
        if (result.integrity.violations > 0 && result.ok()) {
            violated = true;
            handleViolation(item, result);
        }
        const auto end = std::chrono::steady_clock::now();
        result.id = item.request.id;
        result.workerId = id_;
        result.queueSeconds = wait;
        result.serviceSeconds = secondsSince(start, end);
        service = result.serviceSeconds;
        span.arg("service_ms", 1e3 * result.serviceSeconds);

        requestsStat_.inc();
        latencyStat_.sample(1e3 * (wait + result.serviceSeconds));
        serviceStat_.sample(1e3 * result.serviceSeconds);
        waitStat_.sample(1e3 * wait);
        latencyHist_.sample(1e3 * (wait + result.serviceSeconds));
        serviceHist_.sample(1e3 * result.serviceSeconds);
        waitHist_.sample(1e3 * wait);
        spikesStat_.add(static_cast<double>(result.spikes));

        item.promise.set_value(std::move(result));
        flushEwmaSec_ = flushEwmaSec_ <= 0.0
                            ? service
                            : flushEwmaSec_ + 0.2 * (service - flushEwmaSec_);
        consecutiveFaults_ = 0;
    } catch (const std::exception &e) {
        stats_.scalar("failures").inc();
        obs::MetricsRegistry::global()
            .counter("runtime.replica_fault")
            .inc();
        obs::recordInstant("runtime", "request.failed",
                           hooks_.traceRequests);
        shedItem(item, RuntimeErrorKind::ReplicaFault, e.what(), wait);
        ++consecutiveFaults_;
    } catch (...) {
        stats_.scalar("failures").inc();
        obs::MetricsRegistry::global()
            .counter("runtime.replica_fault")
            .inc();
        obs::recordInstant("runtime", "request.failed",
                           hooks_.traceRequests);
        shedItem(item, RuntimeErrorKind::ReplicaFault,
                 "replica threw a non-std exception", wait);
        ++consecutiveFaults_;
    }

    // An ABFT violation escalates the health ladder immediately --
    // detection already proved this replica computes wrong sums, so
    // waiting for the probeEvery cadence would keep serving corrupt
    // results in the meantime. Runs after the promise is settled for
    // the same reason as the periodic probe below.
    if (violated)
        escalateHealthProbe();

    // Probe between requests, after the caller has its answer: the
    // canary cost lands on the worker, not on any request's
    // latency. May repair or swap replica_ (demotion). The probe
    // runs only after a successful evaluation (service >= 0) and
    // OUTSIDE the request's try block: the promise above is already
    // satisfied, so a throwing probe must be absorbed here -- it is
    // accounted as a fault (feeding the supervisor) and must never
    // reach shedItem, which would set the promise a second time.
    if (service >= 0.0 && hooks_.health) {
        try {
            hooks_.health->afterRequest(id_, replica_);
        } catch (...) {
            stats_.scalar("probe_failures").inc();
            obs::MetricsRegistry::global()
                .counter("health.probe_fault")
                .inc();
            obs::recordInstant("runtime", "health.probe_fault",
                               hooks_.traceRequests);
            ++consecutiveFaults_;
        }
    }

    maybeRestartReplica();

    hooks_.onComplete(service);
}

void
Worker::processBatch(std::vector<QueueItem> &items)
{
    const auto flush = std::chrono::steady_clock::now();

    // Typed non-evaluated outcomes, re-checked at flush time: the
    // gather window never outlives a held deadline, but a deadline can
    // expire exactly at the boundary and cancellation can land during
    // the gather. Every shed item still reaches its typed outcome.
    std::vector<QueueItem *> live;
    live.reserve(items.size());
    for (QueueItem &item : items) {
        const double wait = secondsSince(item.enqueued, flush);
        if (item.request.cancel &&
            item.request.cancel->load(std::memory_order_acquire)) {
            stats_.scalar("cancelled").inc();
            obs::MetricsRegistry::global()
                .counter("runtime.cancelled")
                .inc();
            obs::recordInstant("runtime", "request.cancelled",
                               hooks_.traceRequests);
            shedItem(item, RuntimeErrorKind::Cancelled,
                     "request cancelled before evaluation", wait);
            hooks_.onComplete(-1.0);
            continue;
        }
        if (item.hasDeadline && flush > item.deadline) {
            stats_.scalar("timeouts").inc();
            obs::MetricsRegistry::global().counter("runtime.timeout").inc();
            obs::recordInstant("runtime", "request.timeout",
                               hooks_.traceRequests);
            shedItem(item, RuntimeErrorKind::Timeout,
                     "deadline expired in queue", wait);
            hooks_.onComplete(-1.0);
            continue;
        }
        live.push_back(&item);
    }
    if (live.empty())
        return;

    // Same-model is guaranteed (one engine, one replica prototype) but
    // image shapes may still differ; group by shape so every runBatch
    // call is a well-formed micro-batch.
    std::vector<std::vector<QueueItem *>> groups;
    for (QueueItem *item : live) {
        bool placed = false;
        for (auto &group : groups) {
            if (sameShape(group.front()->request.image,
                          item->request.image)) {
                group.push_back(item);
                placed = true;
                break;
            }
        }
        if (!placed)
            groups.push_back({item});
    }
    for (auto &group : groups)
        flushGroup(group);
}

void
Worker::flushGroup(std::vector<QueueItem *> &group)
{
    const auto start = std::chrono::steady_clock::now();
    const int n = static_cast<int>(group.size());

    stats_.scalar("batch.size").sample(static_cast<double>(n));
    stats_
        .histogram("batch.size.hist", kBatchLo, kBatchHi, kBatchBuckets)
        .sample(static_cast<double>(n));
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("runtime.batch.flush").inc();
    registry.observe("runtime.batch.size", static_cast<double>(n),
                     kBatchLo, kBatchHi, kBatchBuckets);

    // One flush span covers the shared chip walk; each request still
    // contributes its own distributed-trace flow hop.
    obs::TraceSpan span("runtime", "batch.flush", hooks_.traceRequests,
                        /*sampled_root=*/true);
    span.arg("size", static_cast<double>(n));
    for (QueueItem *item : group)
        obs::recordFlowStep("runtime", "request.flow",
                            item->request.traceId, hooks_.traceRequests);
    // Queue-depth sampling takes the queue mutex; trace-gated as in
    // the solo path.
    if (hooks_.traceRequests)
        obs::recordCounter("queue.depth",
                           static_cast<double>(queue_->size()),
                           hooks_.traceRequests);

    double service = -1.0;
    bool violated = false;
    try {
        std::vector<const InferenceRequest *> requests;
        requests.reserve(group.size());
        for (QueueItem *item : group)
            requests.push_back(&item->request);
        std::vector<InferenceResult> results = replica_->runBatch(requests);
        NEBULA_ASSERT(results.size() == group.size(),
                      "replica returned wrong batch result count");
        const auto end = std::chrono::steady_clock::now();
        const double batch_seconds = secondsSince(start, end);
        span.arg("service_ms", 1e3 * batch_seconds);

        for (size_t i = 0; i < group.size(); ++i) {
            QueueItem &item = *group[i];
            InferenceResult &result = results[i];
            // Per-item ABFT verdict (the batched walk attributes
            // checksum comparisons per image): a flagged item is
            // re-run solo on the fallback before its promise settles;
            // the others keep their shared-walk results untouched.
            if (result.integrity.violations > 0 && result.ok()) {
                violated = true;
                handleViolation(item, result);
            }
            const double wait = secondsSince(item.enqueued, start);
            result.id = item.request.id;
            result.workerId = id_;
            result.queueSeconds = wait;
            // Each request rode the whole shared walk, so each one's
            // service time is the batch evaluation time.
            result.serviceSeconds = batch_seconds;

            requestsStat_.inc();
            latencyStat_.sample(1e3 * (wait + batch_seconds));
            serviceStat_.sample(1e3 * batch_seconds);
            waitStat_.sample(1e3 * wait);
            latencyHist_.sample(1e3 * (wait + batch_seconds));
            serviceHist_.sample(1e3 * batch_seconds);
            waitHist_.sample(1e3 * wait);
            spikesStat_.add(static_cast<double>(result.spikes));

            item.promise.set_value(std::move(result));
        }
        // The admission EWMA predicts per-request queue drain, and a
        // batch retires n requests in one walk: feed it the effective
        // per-request service time, not the whole-batch time. The
        // gather-window slack EWMA tracks the whole flush instead --
        // that is what the next batch must fit in front of a deadline.
        service = batch_seconds / n;
        flushEwmaSec_ =
            flushEwmaSec_ <= 0.0
                ? batch_seconds
                : flushEwmaSec_ + 0.2 * (batch_seconds - flushEwmaSec_);
        consecutiveFaults_ = 0;
    } catch (const std::exception &e) {
        for (QueueItem *item : group) {
            stats_.scalar("failures").inc();
            obs::MetricsRegistry::global()
                .counter("runtime.replica_fault")
                .inc();
            obs::recordInstant("runtime", "request.failed",
                               hooks_.traceRequests);
            shedItem(*item, RuntimeErrorKind::ReplicaFault, e.what(),
                     secondsSince(item->enqueued, start));
        }
        ++consecutiveFaults_;
    } catch (...) {
        for (QueueItem *item : group) {
            stats_.scalar("failures").inc();
            obs::MetricsRegistry::global()
                .counter("runtime.replica_fault")
                .inc();
            obs::recordInstant("runtime", "request.failed",
                               hooks_.traceRequests);
            shedItem(*item, RuntimeErrorKind::ReplicaFault,
                     "replica threw a non-std exception",
                     secondsSince(item->enqueued, start));
        }
        ++consecutiveFaults_;
    }

    // One escalated probe per flushed batch no matter how many items
    // were flagged -- the probe targets the replica, not the requests.
    if (violated)
        escalateHealthProbe();

    // One probe per flushed batch, promises already settled (see the
    // solo-path comment for why this must stay outside the try block).
    if (service >= 0.0 && hooks_.health) {
        try {
            hooks_.health->afterRequest(id_, replica_);
        } catch (...) {
            stats_.scalar("probe_failures").inc();
            obs::MetricsRegistry::global()
                .counter("health.probe_fault")
                .inc();
            obs::recordInstant("runtime", "health.probe_fault",
                               hooks_.traceRequests);
            ++consecutiveFaults_;
        }
    }

    // Restart BEFORE completion accounting (like the solo path): once
    // the last onComplete lands, waitIdle may return, and a quiesced
    // engine must already reflect any supervisor restart this flush
    // earned -- the next flush of this gather then runs on the fresh
    // replica too.
    maybeRestartReplica();

    // One onComplete per request keeps the engine's submitted_ /
    // completed_ quiesce accounting balanced.
    for (size_t i = 0; i < group.size(); ++i)
        hooks_.onComplete(service);
}

bool
Worker::handleViolation(const QueueItem &item, InferenceResult &result)
{
    auto &registry = obs::MetricsRegistry::global();
    stats_.scalar("abft.violations").inc();
    registry.counter("abft.request_violations").inc();
    obs::recordInstant("runtime", "abft.violation", hooks_.traceRequests);

    if (!hooks_.abftReExecute || !hooks_.abftFallback)
        return false;
    // Deadline-aware hedging: once the request's budget has lapsed, a
    // re-run can only turn a flagged-but-delivered answer into a late
    // one. The flagged original (with integrity.violations set) is the
    // better outcome -- the client sees the corruption verdict.
    if (item.hasDeadline &&
        std::chrono::steady_clock::now() > item.deadline)
        return false;
    if (!abftFallback_) {
        abftFallback_ = hooks_.abftFallback(id_);
        if (!abftFallback_)
            return false;
    }
    try {
        // Exactly one re-execution attempt, with the request's own
        // seed (carried inside item.request), so a stochastic SNN
        // re-run is reproducible.
        InferenceResult redo = abftFallback_->run(item.request);
        // The redo keeps the original's detection verdict: the client
        // must see that checksums ran and flagged this request, not a
        // blank report from the checksum-free fallback.
        redo.integrity.checks += result.integrity.checks;
        redo.integrity.violations += result.integrity.violations;
        redo.integrity.reExecuted = true;
        result = std::move(redo);
        stats_.scalar("abft.reexecutions").inc();
        registry.counter("abft.reexecutions").inc();
        obs::recordInstant("runtime", "abft.reexecute",
                           hooks_.traceRequests);
        return true;
    } catch (...) {
        // A faulting fallback must not unseat the flagged original:
        // the promise chain still delivers a typed answer either way.
        registry.counter("abft.reexec_fault").inc();
        return false;
    }
}

void
Worker::escalateHealthProbe()
{
    if (!hooks_.health)
        return;
    try {
        hooks_.health->probeNow(id_, replica_);
    } catch (...) {
        stats_.scalar("probe_failures").inc();
        obs::MetricsRegistry::global().counter("health.probe_fault").inc();
        obs::recordInstant("runtime", "health.probe_fault",
                           hooks_.traceRequests);
        ++consecutiveFaults_;
    }
}

void
Worker::maybeRestartReplica()
{
    if (hooks_.superviseRestart && hooks_.maxConsecutiveFaults > 0 &&
        consecutiveFaults_ >= hooks_.maxConsecutiveFaults) {
        NEBULA_DEBUG("runtime", "worker", id_, " restarting after ",
                     consecutiveFaults_, " consecutive faults");
        stats_.scalar("restarts").inc();
        replica_ = hooks_.superviseRestart(id_, std::move(replica_));
        NEBULA_ASSERT(replica_, "supervisor returned null replica");
        consecutiveFaults_ = 0;
    }
}

} // namespace nebula
