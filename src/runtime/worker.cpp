#include "runtime/worker.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reliability/health.hpp"

namespace nebula {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start,
             std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double>(end - start).count();
}

// Latency histogram shape shared by all workers so the engine-level
// merge is bin-exact: 0..250 ms in 500 half-ms buckets.
constexpr double kLatencyLoMs = 0.0;
constexpr double kLatencyHiMs = 250.0;
constexpr int kLatencyBuckets = 500;

} // namespace

Worker::Worker(int id, std::unique_ptr<ChipReplica> replica,
               BoundedQueue<QueueItem> *queue, WorkerHooks hooks)
    : id_(id), replica_(std::move(replica)), queue_(queue),
      hooks_(std::move(hooks)), stats_("worker" + std::to_string(id))
{
}

void
Worker::start()
{
    thread_ = std::thread([this] { loop(); });
}

void
Worker::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
Worker::shedItem(QueueItem &item, RuntimeErrorKind kind,
                 std::string message, double wait_seconds)
{
    InferenceResult result;
    result.id = item.request.id;
    result.workerId = id_;
    result.queueSeconds = wait_seconds;
    result.error = kind;
    result.errorMessage = std::move(message);
    item.promise.set_value(std::move(result));
}

void
Worker::loop()
{
    obs::setThreadName("worker" + std::to_string(id_));
    NEBULA_DEBUG("runtime", "worker", id_, " started");
    while (auto item = queue_->pop()) {
        const auto start = std::chrono::steady_clock::now();
        const double wait = secondsSince(item->enqueued, start);

        // Non-evaluated terminal outcomes, checked at dequeue: a
        // cancelled or expired request is shed without touching the
        // replica -- under overload this is what keeps the tail of the
        // queue from wasting chip time on answers nobody can use.
        if (item->request.cancel &&
            item->request.cancel->load(std::memory_order_acquire)) {
            stats_.scalar("cancelled").inc();
            obs::MetricsRegistry::global().counter("runtime.cancelled").inc();
            obs::recordInstant("runtime", "request.cancelled",
                               hooks_.traceRequests);
            shedItem(*item, RuntimeErrorKind::Cancelled,
                     "request cancelled before evaluation", wait);
            hooks_.onComplete(-1.0);
            continue;
        }
        if (item->hasDeadline && start > item->deadline) {
            stats_.scalar("timeouts").inc();
            obs::MetricsRegistry::global().counter("runtime.timeout").inc();
            obs::recordInstant("runtime", "request.timeout",
                               hooks_.traceRequests);
            shedItem(*item, RuntimeErrorKind::Timeout,
                     "deadline expired in queue", wait);
            hooks_.onComplete(-1.0);
            continue;
        }

        // The request span is a sampling root: TraceConfig::sampleEvery
        // applies to it and suppresses the chip/noc spans nested inside
        // replica_->run() when this request is sampled out. Queue wait
        // is attached as an arg (not a span) so per-thread timestamps
        // stay monotonic.
        obs::TraceSpan span("runtime", "request", hooks_.traceRequests,
                            /*sampled_root=*/true);
        span.arg("id", static_cast<double>(item->request.id));
        span.arg("wait_ms", 1e3 * wait);
        // Distributed-trace hop: a request carrying wire trace context
        // links its worker evaluation into the client/server flow.
        obs::recordFlowStep("runtime", "request.flow",
                            item->request.traceId, hooks_.traceRequests);
        obs::recordCounter("queue.depth",
                           static_cast<double>(queue_->size()),
                           hooks_.traceRequests);
        double service = -1.0;
        try {
            InferenceResult result = replica_->run(item->request);
            const auto end = std::chrono::steady_clock::now();
            result.id = item->request.id;
            result.workerId = id_;
            result.queueSeconds = wait;
            result.serviceSeconds = secondsSince(start, end);
            service = result.serviceSeconds;
            span.arg("service_ms", 1e3 * result.serviceSeconds);

            stats_.scalar("requests").inc();
            stats_.scalar("latency_ms").sample(
                1e3 * (wait + result.serviceSeconds));
            stats_.scalar("service_ms").sample(1e3 * result.serviceSeconds);
            stats_.scalar("wait_ms").sample(1e3 * wait);
            stats_
                .histogram("latency_ms.hist", kLatencyLoMs, kLatencyHiMs,
                           kLatencyBuckets)
                .sample(1e3 * (wait + result.serviceSeconds));
            stats_
                .histogram("service_ms.hist", kLatencyLoMs, kLatencyHiMs,
                           kLatencyBuckets)
                .sample(1e3 * result.serviceSeconds);
            stats_
                .histogram("wait_ms.hist", kLatencyLoMs, kLatencyHiMs,
                           kLatencyBuckets)
                .sample(1e3 * wait);
            stats_.scalar("spikes").add(
                static_cast<double>(result.spikes));

            item->promise.set_value(std::move(result));
            consecutiveFaults_ = 0;
        } catch (const std::exception &e) {
            stats_.scalar("failures").inc();
            obs::MetricsRegistry::global()
                .counter("runtime.replica_fault")
                .inc();
            obs::recordInstant("runtime", "request.failed",
                               hooks_.traceRequests);
            shedItem(*item, RuntimeErrorKind::ReplicaFault, e.what(), wait);
            ++consecutiveFaults_;
        } catch (...) {
            stats_.scalar("failures").inc();
            obs::MetricsRegistry::global()
                .counter("runtime.replica_fault")
                .inc();
            obs::recordInstant("runtime", "request.failed",
                               hooks_.traceRequests);
            shedItem(*item, RuntimeErrorKind::ReplicaFault,
                     "replica threw a non-std exception", wait);
            ++consecutiveFaults_;
        }

        // Probe between requests, after the caller has its answer: the
        // canary cost lands on the worker, not on any request's
        // latency. May repair or swap replica_ (demotion). The probe
        // runs only after a successful evaluation (service >= 0) and
        // OUTSIDE the request's try block: the promise above is already
        // satisfied, so a throwing probe must be absorbed here -- it is
        // accounted as a fault (feeding the supervisor) and must never
        // reach shedItem, which would set the promise a second time.
        if (service >= 0.0 && hooks_.health) {
            try {
                hooks_.health->afterRequest(id_, replica_);
            } catch (...) {
                stats_.scalar("probe_failures").inc();
                obs::MetricsRegistry::global()
                    .counter("health.probe_fault")
                    .inc();
                obs::recordInstant("runtime", "health.probe_fault",
                                   hooks_.traceRequests);
                ++consecutiveFaults_;
            }
        }

        if (hooks_.superviseRestart && hooks_.maxConsecutiveFaults > 0 &&
            consecutiveFaults_ >= hooks_.maxConsecutiveFaults) {
            NEBULA_DEBUG("runtime", "worker", id_, " restarting after ",
                         consecutiveFaults_, " consecutive faults");
            stats_.scalar("restarts").inc();
            replica_ = hooks_.superviseRestart(id_, std::move(replica_));
            NEBULA_ASSERT(replica_, "supervisor returned null replica");
            consecutiveFaults_ = 0;
        }

        hooks_.onComplete(service);
    }
    NEBULA_DEBUG("runtime", "worker", id_, " draining done, exiting");
}

} // namespace nebula
