#include "runtime/worker.hpp"

#include <chrono>
#include <exception>
#include <utility>

namespace nebula {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start,
             std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double>(end - start).count();
}

} // namespace

Worker::Worker(int id, std::unique_ptr<ChipReplica> replica,
               BoundedQueue<QueueItem> *queue,
               std::function<void()> on_complete)
    : id_(id), replica_(std::move(replica)), queue_(queue),
      onComplete_(std::move(on_complete)),
      stats_("worker" + std::to_string(id))
{
}

void
Worker::start()
{
    thread_ = std::thread([this] { loop(); });
}

void
Worker::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
Worker::loop()
{
    while (auto item = queue_->pop()) {
        const auto start = std::chrono::steady_clock::now();
        const double wait = secondsSince(item->enqueued, start);
        try {
            InferenceResult result = replica_->run(item->request);
            const auto end = std::chrono::steady_clock::now();
            result.id = item->request.id;
            result.workerId = id_;
            result.queueSeconds = wait;
            result.serviceSeconds = secondsSince(start, end);

            stats_.scalar("requests").inc();
            stats_.scalar("latency_ms").sample(
                1e3 * (wait + result.serviceSeconds));
            stats_.scalar("service_ms").sample(1e3 * result.serviceSeconds);
            stats_.scalar("wait_ms").sample(1e3 * wait);
            stats_.scalar("spikes").add(
                static_cast<double>(result.spikes));

            item->promise.set_value(std::move(result));
        } catch (...) {
            stats_.scalar("failures").inc();
            item->promise.set_exception(std::current_exception());
        }
        onComplete_();
    }
}

} // namespace nebula
