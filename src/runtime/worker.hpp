/**
 * @file
 * Worker thread of the inference engine: pops requests from the shared
 * bounded queue, runs them on its private chip replica, fulfils the
 * request's promise and records latency/throughput into a worker-local
 * StatGroup. All per-request accounting is thread-local; the engine
 * merges it only after the pool has quiesced, so the hot path takes no
 * locks beyond the queue's own.
 */

#ifndef NEBULA_RUNTIME_WORKER_HPP
#define NEBULA_RUNTIME_WORKER_HPP

#include <functional>
#include <memory>
#include <thread>

#include "common/stats.hpp"
#include "runtime/replica.hpp"
#include "runtime/request.hpp"
#include "runtime/request_queue.hpp"

namespace nebula {

/** One worker thread plus its private replica and local stats. */
class Worker
{
  public:
    /**
     * @param id           0-based worker id.
     * @param replica      Private chip replica (takes ownership).
     * @param queue        Shared request queue (not owned).
     * @param on_complete  Engine callback fired after each request has
     *                     been fully accounted (promise fulfilled and
     *                     worker-local stats written).
     */
    Worker(int id, std::unique_ptr<ChipReplica> replica,
           BoundedQueue<QueueItem> *queue,
           std::function<void()> on_complete, bool trace_requests = true);

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    /** Launch the thread (runs until the queue closes and drains). */
    void start();

    /** Join the thread (must follow queue close). */
    void join();

    int id() const { return id_; }

    /**
     * Worker-local request statistics. Safe to read only while the
     * worker is quiescent (engine guarantees this via waitIdle).
     */
    const StatGroup &stats() const { return stats_; }

    const ChipReplica &replica() const { return *replica_; }

  private:
    void loop();

    int id_;
    std::unique_ptr<ChipReplica> replica_;
    BoundedQueue<QueueItem> *queue_;
    std::function<void()> onComplete_;
    bool traceRequests_;
    StatGroup stats_;
    std::thread thread_;
};

} // namespace nebula

#endif // NEBULA_RUNTIME_WORKER_HPP
