/**
 * @file
 * Worker thread of the inference engine: pops requests from the shared
 * bounded queue, runs them on its private chip replica, fulfils the
 * request's promise and records latency/throughput into a worker-local
 * StatGroup. All per-request accounting is thread-local; the engine
 * merges it only after the pool has quiesced, so the hot path takes no
 * locks beyond the queue's own.
 *
 * Lifecycle hardening: every popped request reaches a typed terminal
 * outcome -- evaluated (ok), expired (Timeout), cancelled (Cancelled)
 * or failed (ReplicaFault) -- and the promise is always fulfilled with
 * a value, never broken and never an exception. A replica that throws
 * repeatedly is quarantined and replaced by the supervisor hook; the
 * optional health monitor probes the replica between requests and may
 * swap it too (repair / demotion).
 */

#ifndef NEBULA_RUNTIME_WORKER_HPP
#define NEBULA_RUNTIME_WORKER_HPP

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "runtime/replica.hpp"
#include "runtime/request.hpp"
#include "runtime/request_queue.hpp"

namespace nebula {

class HealthMonitor;

/** Engine callbacks and resilience knobs wired into each worker. */
struct WorkerHooks
{
    /**
     * Fired after each popped request has been fully accounted (promise
     * fulfilled, worker-local stats written, health probe done).
     * @p service_seconds is the replica evaluation time, or a negative
     * value when the request was shed without evaluation (timeout /
     * cancel / fault) -- the engine's service-time EWMA skips those.
     */
    std::function<void(double service_seconds)> onComplete;

    /**
     * Supervisor restart: called from the worker thread after
     * maxConsecutiveFaults consecutive ReplicaFault outcomes with the
     * poisoned replica; returns its freshly programmed replacement
     * (typically a new clone from the engine's factory, with the old
     * one quarantined for inspection). Null: no supervision.
     */
    std::function<std::unique_ptr<ChipReplica>(
        int worker_id, std::unique_ptr<ChipReplica> old)>
        superviseRestart;

    /** Closed-loop health monitor (slot = worker id); null: off. */
    HealthMonitor *health = nullptr;

    /** Consecutive-fault threshold for superviseRestart (0: off). */
    int maxConsecutiveFaults = 0;

    /** Emit per-request trace spans when a session is active. */
    bool traceRequests = true;

    /**
     * Micro-batch gather window (EngineConfig::batching): after a
     * blocking pop the worker drains up to maxBatch-1 further requests,
     * waiting at most maxWaitUs -- never past the earliest deadline it
     * holds -- then flushes the batch through ChipReplica::runBatch.
     * maxBatch <= 1 (default) keeps the solo dequeue path untouched.
     */
    int maxBatch = 1;

    /** Longest gather wait in microseconds (see BatchingConfig). */
    uint64_t maxWaitUs = 0;

    /**
     * Hedged re-execution of ABFT-flagged results (EngineConfig::abft):
     * when a result carries integrity violations and the deadline still
     * has room, the worker re-runs the request once on its lazily built
     * fallback replica before settling the promise, then asks the
     * health monitor to probe the offending slot immediately (no
     * waiting for probeEvery).
     */
    bool abftReExecute = false;

    /** Fallback replica factory for flagged re-runs (null: none). */
    std::function<std::unique_ptr<ChipReplica>(int)> abftFallback;
};

/** One worker thread plus its private replica and local stats. */
class Worker
{
  public:
    /**
     * @param id       0-based worker id (doubles as the health slot).
     * @param replica  Private chip replica (takes ownership).
     * @param queue    Shared request queue (not owned).
     * @param hooks    Engine callbacks / resilience knobs.
     */
    Worker(int id, std::unique_ptr<ChipReplica> replica,
           BoundedQueue<QueueItem> *queue, WorkerHooks hooks);

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    /** Launch the thread (runs until the queue closes and drains). */
    void start();

    /** Join the thread (must follow queue close). */
    void join();

    int id() const { return id_; }

    /**
     * Worker-local request statistics. Safe to read only while the
     * worker is quiescent (engine guarantees this via waitIdle).
     */
    const StatGroup &stats() const { return stats_; }

    const ChipReplica &replica() const { return *replica_; }

    /**
     * Mutable replica access for the engine's quiesced administration
     * paths (withReplicas). Same quiescence contract as stats().
     */
    std::unique_ptr<ChipReplica> &replicaSlot() { return replica_; }

  private:
    void loop();

    /** The pre-batching solo flow for one dequeued request. */
    void processItem(QueueItem &item);

    /**
     * Flush a gathered micro-batch: re-check cancel/deadline per item
     * at flush time (typed shed outcomes -- gathering never outlives a
     * held deadline, but it may expire right at the boundary), group
     * the survivors by image shape and run each group through
     * ChipReplica::runBatch with per-item accounting.
     */
    void processBatch(std::vector<QueueItem> &items);

    /** Evaluate one same-shape group of live items as a micro-batch. */
    void flushGroup(std::vector<QueueItem *> &group);

    /** Supervisor restart check shared by the solo and batch paths. */
    void maybeRestartReplica();

    /**
     * Handle a result that came back with ABFT violations: bill the
     * abft.* metrics, optionally re-execute on the fallback replica
     * (bounded to one attempt, skipped when the deadline has lapsed)
     * and remember to escalate the health probe after the promise is
     * settled. Returns true when the result was replaced by a clean
     * fallback re-run.
     */
    bool handleViolation(const QueueItem &item, InferenceResult &result);

    /** Immediate health probe of this slot (after promise settle). */
    void escalateHealthProbe();

    /** Fulfil @p item with a typed non-evaluated terminal outcome. */
    void shedItem(QueueItem &item, RuntimeErrorKind kind,
                  std::string message, double wait_seconds);

    int id_;
    std::unique_ptr<ChipReplica> replica_;
    BoundedQueue<QueueItem> *queue_;
    WorkerHooks hooks_;
    int consecutiveFaults_ = 0;

    /** Lazily built fallback replica for ABFT re-execution. */
    std::unique_ptr<ChipReplica> abftFallback_;

    /**
     * EWMA of recent replica evaluation times (whole-flush, seconds),
     * fed by both the solo and batch paths; sizes the slack margin the
     * gather window keeps clear of any held deadline.
     */
    double flushEwmaSec_ = 0.0;
    StatGroup stats_;

    /**
     * Cached references into stats_, bound once in the constructor
     * (std::map nodes are stable, so they survive later stat
     * creation): the per-request hot path skips the string-keyed
     * lookups that would otherwise run ~10 times per request.
     */
    ScalarStat &requestsStat_;
    ScalarStat &latencyStat_;
    ScalarStat &serviceStat_;
    ScalarStat &waitStat_;
    ScalarStat &spikesStat_;
    Histogram &latencyHist_;
    Histogram &serviceHist_;
    Histogram &waitHist_;

    std::thread thread_;
};

} // namespace nebula

#endif // NEBULA_RUNTIME_WORKER_HPP
