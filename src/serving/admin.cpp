#include "serving/admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace nebula {
namespace serving {

namespace {

const char *
statusText(int status)
{
    switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    }
    return "Internal Server Error";
}

bool
sendAll(int fd, const std::string &data)
{
    const char *p = data.data();
    size_t n = data.size();
    while (n > 0) {
        const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
        if (sent > 0) {
            p += sent;
            n -= static_cast<size_t>(sent);
            continue;
        }
        if (sent < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace

AdminServer::AdminServer(AdminConfig config) : config_(std::move(config)) {}

AdminServer::~AdminServer()
{
    stop();
}

void
AdminServer::handle(const std::string &path, AdminHandler handler)
{
    NEBULA_ASSERT(!running_.load(),
                  "admin handlers are immutable while running");
    handlers_[path] = std::move(handler);
}

void
AdminServer::start()
{
    NEBULA_ASSERT(listenFd_ < 0, "admin server already started");

    // Defaults for anything the embedder did not override: the global
    // registry is the one every built-in instrumentation point feeds.
    if (!handlers_.count("/metrics"))
        handlers_["/metrics"] = [] {
            AdminResponse res;
            res.contentType = "text/plain; version=0.0.4; charset=utf-8";
            res.body = obs::MetricsRegistry::global().toPrometheus();
            return res;
        };
    if (!handlers_.count("/statusz"))
        handlers_["/statusz"] = [] {
            AdminResponse res;
            res.contentType = "application/json";
            res.body = obs::MetricsRegistry::global().toJson();
            return res;
        };
    if (!handlers_.count("/healthz"))
        handlers_["/healthz"] = [] {
            AdminResponse res;
            res.body = "ok\n";
            return res;
        };

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("admin: socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("admin: bad host " + config_.host);
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, config_.backlog) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("admin: bind/listen failed on " +
                                 config_.host + ":" +
                                 std::to_string(config_.port));
    }

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    running_.store(true);
    thread_ = std::thread([this] { serveLoop(); });
    NEBULA_DEBUG("serving", "admin endpoint on ", config_.host, ":", port_);
}

void
AdminServer::serveLoop()
{
    while (running_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listener closed by stop()
        }
        if (!running_.load()) {
            ::close(fd);
            break;
        }
        timeval tv{};
        tv.tv_sec = config_.ioTimeoutMs / 1000;
        tv.tv_usec = (config_.ioTimeoutMs % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        serveOne(fd);
        ::close(fd);
    }
}

void
AdminServer::serveOne(int fd)
{
    // Read the request head (we never accept a body). The timeout set
    // by the caller bounds a client that trickles or stalls.
    std::string head;
    char buf[1024];
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.find("\n\n") == std::string::npos) {
        if (head.size() > config_.maxRequestBytes)
            break;
        const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
        if (got > 0) {
            head.append(buf, static_cast<size_t>(got));
            continue;
        }
        if (got < 0 && errno == EINTR)
            continue;
        if (head.find('\n') != std::string::npos)
            break; // EOF after the request line: still answerable
        return;    // nothing usable arrived
    }

    AdminResponse res;
    const size_t line_end = head.find_first_of("\r\n");
    const std::string line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        head.size() > config_.maxRequestBytes) {
        res.status = 400;
        res.body = "bad request\n";
    } else if (line.substr(0, sp1) != "GET") {
        res.status = 405;
        res.body = "only GET is served here\n";
    } else {
        std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
        const size_t query = path.find('?');
        if (query != std::string::npos)
            path.resize(query);
        auto it = handlers_.find(path);
        if (it == handlers_.end()) {
            res.status = 404;
            res.body = "unknown path " + path + "\n";
        } else {
            res = it->second();
        }
    }

    std::string reply = "HTTP/1.0 " + std::to_string(res.status) + " " +
                        statusText(res.status) + "\r\n";
    reply += "Content-Type: " + res.contentType + "\r\n";
    reply += "Content-Length: " + std::to_string(res.body.size()) + "\r\n";
    reply += "Connection: close\r\n\r\n";
    reply += res.body;
    sendAll(fd, reply);
    served_.fetch_add(1);
}

void
AdminServer::stop()
{
    if (!running_.exchange(false)) {
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return;
    }
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    if (thread_.joinable())
        thread_.join();
    listenFd_ = -1;
}

} // namespace serving
} // namespace nebula
