/**
 * @file
 * Admin/telemetry HTTP endpoint: a deliberately minimal HTTP/1.0 GET
 * server on its own thread, serving the live telemetry plane of a
 * running process -- `/metrics` (Prometheus text exposition),
 * `/statusz` (JSON operational state) and `/healthz` (readiness).
 *
 * This is not a web framework: one accept thread handles connections
 * serially (a scrape is one GET every few seconds), every socket gets
 * a receive/send timeout so a stuck scraper cannot wedge the thread,
 * requests are capped at a few KB, and every response closes the
 * connection. Handlers are plain callbacks returning a body, so the
 * same server fronts a full ServingServer (rich statusz) or a bare
 * engine binary (registry defaults) -- anything that links obs.
 *
 * Unless overridden via handle(), start() installs defaults backed by
 * MetricsRegistry::global(): /metrics renders toPrometheus(), /statusz
 * renders toJson(), /healthz answers "ok".
 */

#ifndef NEBULA_SERVING_ADMIN_HPP
#define NEBULA_SERVING_ADMIN_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace nebula {
namespace serving {

/** Admin endpoint knobs. */
struct AdminConfig
{
    /** Listen port; 0 binds an ephemeral port (read back via port()). */
    uint16_t port = 0;

    /** Loopback-only by default. */
    std::string host = "127.0.0.1";

    int backlog = 8;

    /** Per-socket receive/send timeout: bounds slow/stuck scrapers. */
    int ioTimeoutMs = 2000;

    /** Request-head cap; longer requests are rejected with 400. */
    size_t maxRequestBytes = 8192;
};

/** One handler's answer. */
struct AdminResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

/** Renders one endpoint's current state. */
using AdminHandler = std::function<AdminResponse()>;

/** The admin/scrape endpoint; one instance per process as needed. */
class AdminServer
{
  public:
    explicit AdminServer(AdminConfig config = {});

    /** stop()s if the caller has not. */
    ~AdminServer();

    AdminServer(const AdminServer &) = delete;
    AdminServer &operator=(const AdminServer &) = delete;

    /**
     * Register/replace the handler for an exact @p path (e.g.
     * "/statusz"). Call before start(); handlers are immutable while
     * the server runs.
     */
    void handle(const std::string &path, AdminHandler handler);

    /** Bind, listen, start serving. Throws std::runtime_error. */
    void start();

    /** Close the listener, join the serving thread. */
    void stop();

    /** Bound port (valid after start()). */
    uint16_t port() const { return port_; }

    bool running() const { return running_.load(); }

    uint64_t requestsServed() const { return served_.load(); }

  private:
    void serveLoop();
    void serveOne(int fd);

    AdminConfig config_;
    std::map<std::string, AdminHandler> handlers_;

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<uint64_t> served_{0};
};

} // namespace serving
} // namespace nebula

#endif // NEBULA_SERVING_ADMIN_HPP
