#include "serving/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace nebula {
namespace serving {

namespace {

bool
readFully(int fd, void *buf, size_t n)
{
    uint8_t *p = static_cast<uint8_t *>(buf);
    while (n > 0) {
        const ssize_t got = ::recv(fd, p, n, 0);
        if (got > 0) {
            p += got;
            n -= static_cast<size_t>(got);
            continue;
        }
        if (got < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
writeFully(int fd, const void *buf, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(buf);
    while (n > 0) {
        const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
        if (sent > 0) {
            p += sent;
            n -= static_cast<size_t>(sent);
            continue;
        }
        if (sent < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace

ServingClient::~ServingClient()
{
    close();
}

bool
ServingClient::connect(const std::string &host, uint16_t port,
                       const ClientConfig &config)
{
    if (open_.load())
        return false; // already connected

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
            0) {
        ::close(fd);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config.recvTimeoutMs > 0) {
        timeval tv{};
        tv.tv_sec = config.recvTimeoutMs / 1000;
        tv.tv_usec = (config.recvTimeoutMs % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }

    fd_ = fd;
    open_.store(true);
    reader_ = std::thread([this] { readerLoop(); });
    return true;
}

std::future<WireResponse>
ServingClient::inferAsync(const std::string &tenant,
                          const std::string &model, WireMode mode,
                          const Tensor &image, const ServeOptions &options)
{
    std::promise<WireResponse> promise;
    std::future<WireResponse> future = promise.get_future();

    WireRequest request;
    request.corrId = nextCorrId_.fetch_add(1);
    request.mode = mode;
    request.timesteps = static_cast<uint32_t>(options.timesteps);
    request.deadlineNs = options.deadlineNs;
    request.seed = options.seed;
    request.tenant = tenant;
    request.model = model;
    request.image = image;

    // With an active trace session, stamp a trace id into the frame
    // header (protocol v2) so the server and worker spans join this
    // request's flow; without one, traceId stays 0 and the encoder
    // emits a byte-identical v1 frame.
    if (obs::TraceSession::enabled()) {
        request.traceId = obs::nextTraceId();
        obs::TraceSpan span("client", "serve.submit");
        span.arg("corr_id", static_cast<double>(request.corrId));
        obs::recordFlowStart("client", "request.flow", request.traceId);
    }

    if (!open_.load()) {
        WireResponse response;
        response.corrId = request.corrId;
        response.status = WireStatus::ConnectionLost;
        response.message = "client not connected";
        promise.set_value(std::move(response));
        return future;
    }

    // Register before sending so the reader can never see the response
    // before the promise exists.
    {
        std::lock_guard<std::mutex> lock(pendingMutex_);
        pending_.emplace(request.corrId, std::move(promise));
        if (request.traceId != 0)
            pendingTrace_.emplace(request.corrId, request.traceId);
    }

    const std::vector<uint8_t> frame = encodeRequestFrame(request);
    bool sent;
    {
        std::lock_guard<std::mutex> lock(sendMutex_);
        sent = writeFully(fd_, frame.data(), frame.size());
    }
    if (!sent) {
        std::lock_guard<std::mutex> lock(pendingMutex_);
        const auto it = pending_.find(request.corrId);
        if (it != pending_.end()) {
            WireResponse response;
            response.corrId = request.corrId;
            response.status = WireStatus::SendFailed;
            response.message = "could not write request frame";
            it->second.set_value(std::move(response));
            pending_.erase(it);
            pendingTrace_.erase(request.corrId);
        }
    } else if (!open_.load()) {
        // The reader died between registration and the send: its
        // failAllPending sweep may have run before our promise landed,
        // so sweep again -- nothing may be left behind to hang on.
        failAllPending(WireStatus::ConnectionLost);
    }
    return future;
}

WireResponse
ServingClient::infer(const std::string &tenant, const std::string &model,
                     WireMode mode, const Tensor &image,
                     const ServeOptions &options)
{
    return inferAsync(tenant, model, mode, image, options).get();
}

void
ServingClient::readerLoop()
{
    while (open_.load()) {
        uint8_t raw_header[kHeaderBytes];
        if (!readFully(fd_, raw_header, sizeof(raw_header)))
            break;
        FrameHeader header;
        if (decodeHeader(raw_header, sizeof(raw_header),
                         /*max_body=*/1 << 26, header) != WireStatus::Ok ||
            header.type != FrameType::Response)
            break;
        // Unflagged responses arrive as v1 frames; a v3 response
        // carries the ABFT integrity flags in its header extension
        // (and a v2 one a trace context, tolerated for forward
        // compatibility).
        const size_t extra = headerExtraBytes(header.version);
        if (extra > 0) {
            uint8_t raw_extra[kMaxHeaderExtraBytes];
            if (!readFully(fd_, raw_extra, extra) ||
                decodeHeaderExtra(raw_extra, extra, header) !=
                    WireStatus::Ok)
                break;
        }
        std::vector<uint8_t> body(header.bodyLen);
        if (header.bodyLen > 0 &&
            !readFully(fd_, body.data(), body.size()))
            break;
        WireResponse response;
        if (decodeResponseBody(body.data(), body.size(), response) !=
            WireStatus::Ok)
            break;
        response.integrity = header.integrity;

        std::promise<WireResponse> promise;
        bool matched = false;
        uint64_t trace_id = 0;
        {
            std::lock_guard<std::mutex> lock(pendingMutex_);
            const auto it = pending_.find(response.corrId);
            if (it != pending_.end()) {
                promise = std::move(it->second);
                pending_.erase(it);
                matched = true;
            }
            const auto trace_it = pendingTrace_.find(response.corrId);
            if (trace_it != pendingTrace_.end()) {
                trace_id = trace_it->second;
                pendingTrace_.erase(trace_it);
            }
        }
        if (trace_id != 0) {
            obs::TraceSpan span("client", "serve.response");
            span.arg("corr_id", static_cast<double>(response.corrId));
            obs::recordFlowEnd("client", "request.flow", trace_id);
        }
        if (matched) {
            promise.set_value(std::move(response));
        } else if (response.status != WireStatus::Ok) {
            // Unmatchable error (e.g. a bad-header response with corr
            // id 0): the server is about to close -- fail everything
            // with the typed status so no caller hangs.
            failAllPending(response.status);
        }
    }
    open_.store(false);
    failAllPending(WireStatus::ConnectionLost);
}

void
ServingClient::failAllPending(WireStatus status)
{
    std::map<uint64_t, std::promise<WireResponse>> orphaned;
    {
        std::lock_guard<std::mutex> lock(pendingMutex_);
        orphaned.swap(pending_);
        pendingTrace_.clear();
    }
    for (auto &[corr_id, promise] : orphaned) {
        WireResponse response;
        response.corrId = corr_id;
        response.status = status;
        response.message = "connection failed";
        promise.set_value(std::move(response));
    }
}

void
ServingClient::close()
{
    if (open_.exchange(false)) {
        ::shutdown(fd_, SHUT_RDWR);
    }
    if (reader_.joinable())
        reader_.join();
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    failAllPending(WireStatus::ConnectionLost);
}

} // namespace serving
} // namespace nebula
