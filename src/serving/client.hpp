/**
 * @file
 * C++ client for the serving front-end: one TCP connection, a writer
 * (the caller's thread, under a send mutex) and a background reader
 * thread matching responses to promises by correlation id. Supports
 * blocking calls (infer) and pipelined async calls (inferAsync) on the
 * same connection; responses arrive in server order, the corr-id map
 * keeps delivery robust anyway.
 *
 * Liveness: every future resolves. A lost/closed/timed-out connection
 * fails all pending requests with the client-local ConnectionLost
 * status; a failed send resolves that request with SendFailed. The
 * client never throws on wire traffic.
 */

#ifndef NEBULA_SERVING_CLIENT_HPP
#define NEBULA_SERVING_CLIENT_HPP

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "serving/protocol.hpp"

namespace nebula {
namespace serving {

/** Client connection knobs. */
struct ClientConfig
{
    /**
     * Receive timeout (ms) guarding against a wedged server; 0
     * disables. On expiry every pending request resolves to
     * ConnectionLost and the connection closes.
     */
    int recvTimeoutMs = 30000;
};

/** Per-request knobs of one client call. */
struct ServeOptions
{
    int timesteps = 0;      //!< 0: server/engine default
    uint64_t deadlineNs = 0;//!< 0: server default
    uint64_t seed = 0;      //!< 0: engine derives per request
};

/** Blocking + async serving client. */
class ServingClient
{
  public:
    ServingClient() = default;

    /** close()s if the caller has not. */
    ~ServingClient();

    ServingClient(const ServingClient &) = delete;
    ServingClient &operator=(const ServingClient &) = delete;

    /** Connect and start the reader; false on failure. */
    bool connect(const std::string &host, uint16_t port,
                 const ClientConfig &config = {});

    bool connected() const { return open_.load(); }

    /**
     * Pipeline one request; the future resolves to the typed wire
     * response (or a client-local ConnectionLost/SendFailed).
     */
    std::future<WireResponse> inferAsync(const std::string &tenant,
                                         const std::string &model,
                                         WireMode mode, const Tensor &image,
                                         const ServeOptions &options = {});

    /** Blocking form of inferAsync. */
    WireResponse infer(const std::string &tenant, const std::string &model,
                       WireMode mode, const Tensor &image,
                       const ServeOptions &options = {});

    /** Close the connection; fails all pending requests. Idempotent. */
    void close();

  private:
    void readerLoop();

    /** Resolve every pending promise with @p status. */
    void failAllPending(WireStatus status);

    int fd_ = -1;
    std::atomic<bool> open_{false};
    std::atomic<uint64_t> nextCorrId_{1};
    std::thread reader_;

    std::mutex sendMutex_;
    std::mutex pendingMutex_;
    std::map<uint64_t, std::promise<WireResponse>> pending_;
    /** corr id -> trace id of in-flight traced requests (flow end). */
    std::map<uint64_t, uint64_t> pendingTrace_;
};

} // namespace serving
} // namespace nebula

#endif // NEBULA_SERVING_CLIENT_HPP
