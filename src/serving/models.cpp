#include "serving/models.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "snn/hybrid.hpp"

namespace nebula {
namespace serving {

bool
parseServableId(const std::string &id, ServableModelSpec &out)
{
    const size_t slash = id.find('/');
    if (slash == std::string::npos || slash == 0 || slash + 1 >= id.size())
        return false;
    ServableModelSpec spec;
    spec.family = id.substr(0, slash);
    spec.mode = id.substr(slash + 1);
    if (spec.family != "mlp3" && spec.family != "lenet5")
        return false;
    if (spec.mode != "ann" && spec.mode != "snn" && spec.mode != "hybrid")
        return false;
    out = spec;
    return true;
}

/** Trained float prototype + the batch everything is calibrated on. */
struct ServableLoader::Cached
{
    Network net{"uninit"};
    Tensor calibration;
};

ServableLoader &
ServableLoader::global()
{
    static ServableLoader loader;
    return loader;
}

const ServableLoader::Cached &
ServableLoader::cached(const ServableModelSpec &spec)
{
    // Key on everything training depends on; mode is deliberately
    // excluded -- ann/snn/hybrid servables of one family share the
    // trained float prototype.
    std::ostringstream key;
    key << spec.family << ':' << spec.imageSize << ':' << spec.classes
        << ':' << spec.trainImages << ':' << spec.epochs << ':'
        << spec.learningRate << ':' << spec.seed;

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key.str());
    if (it != cache_.end())
        return *it->second;

    auto entry = std::make_unique<Cached>();
    if (spec.family == "mlp3") {
        entry->net = buildMlp3(spec.imageSize, 1, spec.classes, spec.seed);
    } else if (spec.family == "lenet5") {
        entry->net =
            buildLenet5(spec.imageSize, 1, spec.classes, spec.seed);
    } else {
        NEBULA_FATAL("unknown servable family '", spec.family, "'");
    }

    SyntheticDigits train(std::max(spec.trainImages, 64), spec.imageSize,
                          /*seed=*/1);
    if (spec.epochs > 0) {
        TrainConfig tc;
        tc.epochs = spec.epochs;
        tc.learningRate = spec.learningRate;
        SgdTrainer trainer(tc);
        trainer.train(entry->net, train);
    } else {
        // Untrained servables still need fixed geometry for mapping.
        Tensor probe({1, 1, spec.imageSize, spec.imageSize});
        entry->net.forward(probe);
    }
    entry->calibration = train.firstImages(std::min(64, train.size()));

    it = cache_.emplace(key.str(), std::move(entry)).first;
    NEBULA_DEBUG("serving", "trained servable prototype ", spec.family,
                 " (", spec.epochs, " epochs, cached)");
    return *it->second;
}

Network
ServableLoader::trainedNetwork(const ServableModelSpec &spec)
{
    return cached(spec).net.clone();
}

Tensor
ServableLoader::calibration(const ServableModelSpec &spec)
{
    return cached(spec).calibration;
}

QuantizedServable
ServableLoader::quantized(const ServableModelSpec &spec)
{
    const Cached &entry = cached(spec);
    QuantizedServable out{entry.net.clone(), {}};
    out.quant = quantizeNetwork(out.net, entry.calibration);
    return out;
}

SpikingModel
ServableLoader::spiking(const ServableModelSpec &spec)
{
    const Cached &entry = cached(spec);
    Network net = entry.net.clone();
    return convertToSnn(net, entry.calibration);
}

ReplicaFactory
ServableLoader::makeFactory(const ServableModelSpec &spec,
                            const ReliabilityConfig &reliability,
                            const NebulaConfig &chip)
{
    if (spec.mode == "ann") {
        QuantizedServable q = quantized(spec);
        return makeAnnReplicaFactory(q.net, q.quant, chip,
                                     /*variation_sigma=*/0.0, spec.chipSeed,
                                     reliability);
    }
    if (spec.mode == "snn") {
        SpikingModel model = spiking(spec);
        return makeSnnReplicaFactory(model, chip,
                                     /*variation_sigma=*/0.0, spec.chipSeed,
                                     reliability);
    }
    if (spec.mode == "hybrid") {
        const Cached &entry = cached(spec);
        return makeHybridReplicaFactory(entry.net, entry.calibration,
                                        spec.hybridAnnLayers);
    }
    NEBULA_FATAL("unknown servable mode '", spec.mode, "'");
}

ReplicaFactory
ServableLoader::makeFallbackFactory(const ServableModelSpec &spec)
{
    if (spec.mode == "ann")
        return makeFunctionalAnnReplicaFactory(trainedNetwork(spec));
    if (spec.mode == "snn") {
        const Cached &entry = cached(spec);
        return makeFunctionalSnnReplicaFactory(entry.net,
                                               entry.calibration);
    }
    if (spec.mode == "hybrid") {
        // Hybrid servables are already chip-free; an identically built
        // pipeline is the natural (if redundant) fallback.
        const Cached &entry = cached(spec);
        return makeHybridReplicaFactory(entry.net, entry.calibration,
                                        spec.hybridAnnLayers);
    }
    NEBULA_FATAL("unknown servable mode '", spec.mode, "'");
}

} // namespace serving
} // namespace nebula
