/**
 * @file
 * Servable model zoo: the shared loader behind the multi-tenant model
 * registry, the serving examples and the tenancy bench. A servable is
 * a (family x mode) pair -- e.g. "lenet5/snn" -- trained once on the
 * synthetic digit set and cached in-process, so a weight *swap* costs
 * exactly what the paper says it should: re-programming crossbars
 * under write-verify (pulses/energy in the ProgramReport), never
 * re-training.
 */

#ifndef NEBULA_SERVING_MODELS_HPP
#define NEBULA_SERVING_MODELS_HPP

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "runtime/replica.hpp"
#include "snn/convert.hpp"

namespace nebula {
namespace serving {

/** One entry of the servable catalog. */
struct ServableModelSpec
{
    std::string family = "mlp3"; //!< "mlp3" | "lenet5"
    std::string mode = "ann";    //!< "ann" | "snn" | "hybrid"
    int imageSize = 16;
    int classes = 10;
    int trainImages = 600;       //!< synthetic-digit training samples
    int epochs = 4;              //!< 0: serve seeded, untrained weights
    double learningRate = 0.08;
    uint64_t seed = 7;           //!< weight-init seed
    uint64_t chipSeed = 5;       //!< replica programming seed
    int hybridAnnLayers = 1;     //!< trailing ANN layers in hybrid mode

    /** Registry/catalog id: "<family>/<mode>". */
    std::string id() const { return family + "/" + mode; }
};

/**
 * Parse "family/mode" (e.g. "lenet5/ann") into a spec with default
 * training knobs; false when the family or mode is unknown.
 */
bool parseServableId(const std::string &id, ServableModelSpec &out);

/** Quantized form of a trained servable (ANN chip programming input). */
struct QuantizedServable
{
    Network net; //!< weights already quantized in place
    QuantizationResult quant;
};

/**
 * Process-wide cache of trained servable prototypes, keyed by the
 * training-relevant spec fields. Training happens at most once per
 * (family, geometry, seed, schedule); everything handed out is a
 * private clone/conversion of the cached float network.
 */
class ServableLoader
{
  public:
    static ServableLoader &global();

    /** Clone of the trained (or epochs==0: seeded) float network. */
    Network trainedNetwork(const ServableModelSpec &spec);

    /** Freshly quantized clone + quantization record. */
    QuantizedServable quantized(const ServableModelSpec &spec);

    /** Freshly converted spiking model. */
    SpikingModel spiking(const ServableModelSpec &spec);

    /** Calibration batch used for quantization/conversion. */
    Tensor calibration(const ServableModelSpec &spec);

    /**
     * Replica factory for the spec's mode. ANN/SNN factories program
     * chips under @p reliability (the registry passes write-verify so
     * swap-ins are costed) with @p chip as the chip configuration
     * (e.g. NebulaConfig::abft for checksum-column integrity
     * checking); the hybrid mode is functional (no chip, no
     * programming cost, @p chip ignored).
     */
    ReplicaFactory makeFactory(const ServableModelSpec &spec,
                               const ReliabilityConfig &reliability = {},
                               const NebulaConfig &chip = {});

    /**
     * Functional (no-crossbar) fallback factory for the spec's mode --
     * the backend ABFT-flagged requests are re-executed on (hybrid
     * servables are already functional and get an equivalent pipeline).
     */
    ReplicaFactory makeFallbackFactory(const ServableModelSpec &spec);

    /** Expected request-image shape, (C, H, W). */
    std::vector<int> inputShape(const ServableModelSpec &spec) const
    {
        return {1, spec.imageSize, spec.imageSize};
    }

  private:
    struct Cached;
    const Cached &cached(const ServableModelSpec &spec);

    std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Cached>> cache_;
};

} // namespace serving
} // namespace nebula

#endif // NEBULA_SERVING_MODELS_HPP
