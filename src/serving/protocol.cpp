#include "serving/protocol.hpp"

#include <algorithm>
#include <bit>

namespace nebula {
namespace serving {

const char *
toString(WireStatus status)
{
    switch (status) {
    case WireStatus::Ok: return "ok";
    case WireStatus::Timeout: return "timeout";
    case WireStatus::Shed: return "shed";
    case WireStatus::EngineStopped: return "engine_stopped";
    case WireStatus::ReplicaFault: return "replica_fault";
    case WireStatus::Cancelled: return "cancelled";
    case WireStatus::BadFrame: return "bad_frame";
    case WireStatus::UnsupportedVersion: return "unsupported_version";
    case WireStatus::PayloadTooLarge: return "payload_too_large";
    case WireStatus::BadRequest: return "bad_request";
    case WireStatus::UnknownModel: return "unknown_model";
    case WireStatus::QuotaExceeded: return "quota_exceeded";
    case WireStatus::Internal: return "internal";
    case WireStatus::ConnectionLost: return "connection_lost";
    case WireStatus::SendFailed: return "send_failed";
    }
    return "unknown";
}

const char *
toString(WireMode mode)
{
    switch (mode) {
    case WireMode::Ann: return "ann";
    case WireMode::Snn: return "snn";
    case WireMode::Hybrid: return "hybrid";
    }
    return "unknown";
}

bool
parseWireMode(const std::string &text, WireMode &out)
{
    if (text == "ann") {
        out = WireMode::Ann;
    } else if (text == "snn") {
        out = WireMode::Snn;
    } else if (text == "hybrid") {
        out = WireMode::Hybrid;
    } else {
        return false;
    }
    return true;
}

// -- ByteReader -----------------------------------------------------------

bool
ByteReader::bytes(void *out, size_t n)
{
    if (size_ - pos_ < n)
        return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
}

bool
ByteReader::u8(uint8_t &v)
{
    return bytes(&v, 1);
}

bool
ByteReader::u16(uint16_t &v)
{
    uint8_t b[2];
    if (!bytes(b, 2))
        return false;
    v = static_cast<uint16_t>(b[0] | (b[1] << 8));
    return true;
}

bool
ByteReader::u32(uint32_t &v)
{
    uint8_t b[4];
    if (!bytes(b, 4))
        return false;
    v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
        (static_cast<uint32_t>(b[2]) << 16) |
        (static_cast<uint32_t>(b[3]) << 24);
    return true;
}

bool
ByteReader::u64(uint64_t &v)
{
    uint32_t lo, hi;
    if (!u32(lo) || !u32(hi))
        return false;
    v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
}

bool
ByteReader::i32(int32_t &v)
{
    uint32_t raw;
    if (!u32(raw))
        return false;
    v = static_cast<int32_t>(raw);
    return true;
}

bool
ByteReader::f32(float &v)
{
    uint32_t raw;
    if (!u32(raw))
        return false;
    v = std::bit_cast<float>(raw);
    return true;
}

bool
ByteReader::f64(double &v)
{
    uint64_t raw;
    if (!u64(raw))
        return false;
    v = std::bit_cast<double>(raw);
    return true;
}

bool
ByteReader::str(std::string &out, size_t len)
{
    if (size_ - pos_ < len)
        return false;
    out.assign(reinterpret_cast<const char *>(data_) + pos_, len);
    pos_ += len;
    return true;
}

// -- ByteWriter -----------------------------------------------------------

void
ByteWriter::u16(uint16_t v)
{
    out_.push_back(static_cast<uint8_t>(v));
    out_.push_back(static_cast<uint8_t>(v >> 8));
}

void
ByteWriter::u32(uint32_t v)
{
    out_.push_back(static_cast<uint8_t>(v));
    out_.push_back(static_cast<uint8_t>(v >> 8));
    out_.push_back(static_cast<uint8_t>(v >> 16));
    out_.push_back(static_cast<uint8_t>(v >> 24));
}

void
ByteWriter::u64(uint64_t v)
{
    u32(static_cast<uint32_t>(v));
    u32(static_cast<uint32_t>(v >> 32));
}

void
ByteWriter::f32(float v)
{
    u32(std::bit_cast<uint32_t>(v));
}

void
ByteWriter::f64(double v)
{
    u64(std::bit_cast<uint64_t>(v));
}

void
ByteWriter::bytes(const void *data, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    out_.insert(out_.end(), p, p + n);
}

// -- tensors --------------------------------------------------------------

namespace {

void
writeTensor(ByteWriter &w, const Tensor &t)
{
    w.u8(static_cast<uint8_t>(t.rank()));
    for (int i = 0; i < t.rank(); ++i)
        w.i32(t.dim(i));
    for (long long i = 0; i < t.size(); ++i)
        w.f32(t[i]);
}

/** Shape-validated tensor read; BadFrame on any violation. */
bool
readTensor(ByteReader &r, Tensor &out)
{
    uint8_t rank;
    if (!r.u8(rank) || rank > kMaxTensorRank)
        return false;
    std::vector<int> shape(rank);
    long long total = rank > 0 ? 1 : 0;
    for (uint8_t i = 0; i < rank; ++i) {
        int32_t d;
        if (!r.i32(d) || d < 1 || d > kMaxTensorDim)
            return false;
        shape[i] = d;
        total *= d;
        if (total > kMaxTensorDim * 16)
            return false; // element cap, independent of the frame cap
    }
    if (r.remaining() < static_cast<size_t>(total) * 4)
        return false;
    Tensor t(shape);
    for (long long i = 0; i < total; ++i)
        if (!r.f32(t[i]))
            return false;
    out = std::move(t);
    return true;
}

void
writeShortString(ByteWriter &w, const std::string &s)
{
    const size_t n = std::min<size_t>(s.size(), 255);
    w.u8(static_cast<uint8_t>(n));
    w.bytes(s.data(), n);
}

} // namespace

// -- frames ---------------------------------------------------------------

WireStatus
decodeHeader(const uint8_t *raw, size_t size, size_t max_body,
             FrameHeader &out)
{
    ByteReader r(raw, size);
    uint32_t magic;
    uint8_t version, type;
    uint16_t reserved;
    uint32_t body_len;
    if (!r.u32(magic) || !r.u8(version) || !r.u8(type) || !r.u16(reserved) ||
        !r.u32(body_len))
        return WireStatus::BadFrame;
    if (magic != kWireMagic)
        return WireStatus::BadFrame;
    if (version != kWireVersion && version != kWireVersionTrace &&
        version != kWireVersionIntegrity)
        return WireStatus::UnsupportedVersion;
    if (type != static_cast<uint8_t>(FrameType::Request) &&
        type != static_cast<uint8_t>(FrameType::Response))
        return WireStatus::BadFrame;
    if (body_len > max_body)
        return WireStatus::PayloadTooLarge;
    out.magic = magic;
    out.version = version;
    out.type = static_cast<FrameType>(type);
    out.bodyLen = body_len;
    out.traceId = 0;   // filled by decodeHeaderExtra on v2+ frames
    out.integrity = 0; // filled by decodeHeaderExtra on v3 frames
    return WireStatus::Ok;
}

WireStatus
decodeHeaderExtra(const uint8_t *raw, size_t size, FrameHeader &out)
{
    const size_t expected = headerExtraBytes(out.version);
    if (size != expected)
        return WireStatus::BadFrame;
    if (expected == 0)
        return WireStatus::Ok;
    ByteReader r(raw, size);
    if (!r.u64(out.traceId))
        return WireStatus::BadFrame;
    if (out.version >= kWireVersionIntegrity && !r.u8(out.integrity))
        return WireStatus::BadFrame;
    return WireStatus::Ok;
}

std::vector<uint8_t>
encodeFrame(FrameType type, const std::vector<uint8_t> &body,
            uint64_t trace_id, uint8_t integrity)
{
    // Lowest version whose extension fields are all zero: unflagged
    // untraced frames stay byte-identical to the v1 wire format.
    const uint8_t version = integrity ? kWireVersionIntegrity
                            : trace_id ? kWireVersionTrace
                                       : kWireVersion;
    std::vector<uint8_t> frame;
    frame.reserve(kHeaderBytes + headerExtraBytes(version) + body.size());
    ByteWriter w(frame);
    w.u32(kWireMagic);
    w.u8(version);
    w.u8(static_cast<uint8_t>(type));
    w.u16(0);
    w.u32(static_cast<uint32_t>(body.size()));
    if (version >= kWireVersionTrace)
        w.u64(trace_id);
    if (version >= kWireVersionIntegrity)
        w.u8(integrity);
    w.bytes(body.data(), body.size());
    return frame;
}

std::vector<uint8_t>
encodeRequestBody(const WireRequest &request)
{
    std::vector<uint8_t> body;
    ByteWriter w(body);
    w.u64(request.corrId);
    w.u8(static_cast<uint8_t>(request.mode));
    w.u32(request.timesteps);
    w.u64(request.deadlineNs);
    w.u64(request.seed);
    writeShortString(w, request.tenant);
    writeShortString(w, request.model);
    writeTensor(w, request.image);
    return body;
}

std::vector<uint8_t>
encodeResponseBody(const WireResponse &response)
{
    std::vector<uint8_t> body;
    ByteWriter w(body);
    w.u64(response.corrId);
    w.u16(static_cast<uint16_t>(response.status));
    w.i32(response.predictedClass);
    w.f64(response.serverMs);
    std::string message = response.message.substr(
        0, std::min<size_t>(response.message.size(), 65535));
    w.u16(static_cast<uint16_t>(message.size()));
    w.bytes(message.data(), message.size());
    writeTensor(w, response.logits);
    return body;
}

std::vector<uint8_t>
encodeRequestFrame(const WireRequest &request)
{
    return encodeFrame(FrameType::Request, encodeRequestBody(request),
                       request.traceId);
}

std::vector<uint8_t>
encodeResponseFrame(const WireResponse &response)
{
    return encodeFrame(FrameType::Response, encodeResponseBody(response),
                       /*trace_id=*/0, response.integrity);
}

WireStatus
decodeRequestBody(const uint8_t *data, size_t size, WireRequest &out)
{
    ByteReader r(data, size);
    // The corr id decodes first so even a malformed body can be
    // answered with a matchable error response.
    if (!r.u64(out.corrId))
        return WireStatus::BadFrame;
    uint8_t mode;
    if (!r.u8(mode) || !r.u32(out.timesteps) || !r.u64(out.deadlineNs) ||
        !r.u64(out.seed))
        return WireStatus::BadFrame;
    if (mode > static_cast<uint8_t>(WireMode::Hybrid))
        return WireStatus::BadRequest;
    out.mode = static_cast<WireMode>(mode);
    uint8_t len;
    if (!r.u8(len) || !r.str(out.tenant, len))
        return WireStatus::BadFrame;
    if (!r.u8(len) || !r.str(out.model, len))
        return WireStatus::BadFrame;
    if (!readTensor(r, out.image))
        return WireStatus::BadFrame;
    if (!r.done())
        return WireStatus::BadFrame; // trailing junk: reject, stay in sync
    if (out.tenant.empty() || out.model.empty())
        return WireStatus::BadRequest;
    return WireStatus::Ok;
}

WireStatus
decodeResponseBody(const uint8_t *data, size_t size, WireResponse &out)
{
    ByteReader r(data, size);
    if (!r.u64(out.corrId))
        return WireStatus::BadFrame;
    uint16_t status;
    if (!r.u16(status) || !r.i32(out.predictedClass) || !r.f64(out.serverMs))
        return WireStatus::BadFrame;
    out.status = static_cast<WireStatus>(status);
    uint16_t msg_len;
    if (!r.u16(msg_len) || !r.str(out.message, msg_len))
        return WireStatus::BadFrame;
    if (!readTensor(r, out.logits))
        return WireStatus::BadFrame;
    if (!r.done())
        return WireStatus::BadFrame;
    return WireStatus::Ok;
}

} // namespace serving
} // namespace nebula
