/**
 * @file
 * Wire protocol of the serving front-end: a length-prefixed binary
 * framing over TCP, little-endian throughout.
 *
 *   Frame   = [u32 magic "NEBP"] [u8 version] [u8 type] [u16 reserved]
 *             [u32 bodyLen] [v2: u64 traceId] [body ...]
 *   Request = [u64 corrId] [u8 mode] [u32 timesteps] [u64 deadlineNs]
 *             [u64 seed] [u8 len + tenant] [u8 len + model]
 *             [u8 rank] [i32 dims]* [f32 data]*
 *   Response= [u64 corrId] [u16 status] [i32 predictedClass]
 *             [f64 serverMs] [u16 len + message]
 *             [u8 rank] [i32 dims]* [f32 logits]*
 *
 * Every malformed input maps to a typed WireStatus -- the decoder
 * never throws on wire bytes and never reads past the buffer, so a
 * truncated frame, an oversized length prefix or random garbage yields
 * a clean error response (then a close), not a crash or a hang. The
 * float payloads travel as raw IEEE-754 bits, so a round trip is
 * bit-exact and the determinism guarantee of the engine (per-request
 * encoder seeds) extends across the socket.
 *
 * Versioning: v1 is the fixed 12-byte header above; v2 appends a u64
 * trace-context id (the Perfetto flow id linking client, server and
 * worker spans) between the fixed header and the body; v3 appends one
 * more byte after the trace id -- the ABFT integrity flags of a
 * response (bit 0: checksum comparisons ran, bit 1: a comparison
 * flagged corruption, bit 2: the result comes from a fallback re-run).
 * Encoders always emit the *lowest* version whose extension fields are
 * all zero: untraced unflagged traffic stays byte-identical to the old
 * wire format, traced-but-unflagged traffic stays v2, and v1/v2-only
 * peers interoperate until a flag actually needs to travel. Decoders
 * accept all three versions.
 */

#ifndef NEBULA_SERVING_PROTOCOL_HPP
#define NEBULA_SERVING_PROTOCOL_HPP

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace nebula {
namespace serving {

constexpr uint32_t kWireMagic = 0x4E454250u; // "NEBP"
constexpr uint8_t kWireVersion = 1;      //!< fixed-header frames
constexpr uint8_t kWireVersionTrace = 2; //!< + u64 trace-context id
constexpr uint8_t kWireVersionIntegrity = 3; //!< + u8 integrity flags
constexpr size_t kHeaderBytes = 12;      //!< fixed part, every version
constexpr size_t kTraceContextBytes = 8; //!< v2 header extension
constexpr size_t kIntegrityBytes = 1;    //!< extra v3 header extension

/** Largest header extension any known version carries. */
constexpr size_t kMaxHeaderExtraBytes =
    kTraceContextBytes + kIntegrityBytes;

// FrameHeader::integrity flag bits (v3 header extension).
constexpr uint8_t kIntegrityFlagChecked = 0x01;    //!< ABFT ran
constexpr uint8_t kIntegrityFlagViolation = 0x02;  //!< corruption seen
constexpr uint8_t kIntegrityFlagReExecuted = 0x04; //!< fallback re-run

/** Header-extension length that follows the fixed 12 bytes. */
constexpr size_t
headerExtraBytes(uint8_t version)
{
    if (version >= kWireVersionIntegrity)
        return kTraceContextBytes + kIntegrityBytes;
    return version >= kWireVersionTrace ? kTraceContextBytes : 0;
}
constexpr int kMaxTensorRank = 8;
constexpr long long kMaxTensorDim = 1 << 20;

/** Frame payload kind. */
enum class FrameType : uint8_t
{
    Request = 1,
    Response = 2,
};

/**
 * Typed outcome of one wire request. Values < 16 mirror the engine's
 * RuntimeErrorKind; 16..99 are protocol/serving-layer outcomes; values
 * >= 100 are client-local synthetics (never sent on the wire).
 */
enum class WireStatus : uint16_t
{
    Ok = 0,
    Timeout = 1,       //!< deadline expired before evaluation
    Shed = 2,          //!< engine admission control refused the request
    EngineStopped = 3, //!< model engine shut down mid-request
    ReplicaFault = 4,  //!< serving replica threw (transient)
    Cancelled = 5,

    BadFrame = 16,           //!< malformed header or body
    UnsupportedVersion = 17, //!< magic ok, version unknown
    PayloadTooLarge = 18,    //!< length prefix exceeds the server cap
    BadRequest = 19,         //!< well-framed but semantically invalid
    UnknownModel = 20,       //!< (model, mode) not in the registry catalog
    QuotaExceeded = 21,      //!< tenant token bucket empty (typed shed)
    Internal = 22,           //!< unexpected server-side failure

    ConnectionLost = 100, //!< client-local: socket closed mid-request
    SendFailed = 101,     //!< client-local: could not write the frame
};

/** Stable lower-case name ("ok", "quota_exceeded", ...). */
const char *toString(WireStatus status);

/** Inference mode requested on the wire. */
enum class WireMode : uint8_t
{
    Ann = 0,
    Snn = 1,
    Hybrid = 2,
};

const char *toString(WireMode mode);

/** Parse "ann" / "snn" / "hybrid"; false on anything else. */
bool parseWireMode(const std::string &text, WireMode &out);

/** Frame header (see file comment for layout). */
struct FrameHeader
{
    uint32_t magic = kWireMagic;
    uint8_t version = kWireVersion;
    FrameType type = FrameType::Request;
    uint32_t bodyLen = 0;
    uint64_t traceId = 0;  //!< v2+ extension (0 on v1 frames)
    uint8_t integrity = 0; //!< v3 extension flags (0 below v3)
};

/** One decoded inference request. */
struct WireRequest
{
    uint64_t corrId = 0;     //!< client-chosen correlation id (echoed)
    WireMode mode = WireMode::Ann;
    uint32_t timesteps = 0;  //!< 0: engine default
    uint64_t deadlineNs = 0; //!< 0: server/engine default
    uint64_t seed = 0;       //!< 0: engine derives from request id
    uint64_t traceId = 0;    //!< flow id from the v2 header (0: none)
    std::string tenant;
    std::string model;       //!< catalog family, e.g. "mlp3"
    Tensor image;
};

/** One decoded inference response. */
struct WireResponse
{
    uint64_t corrId = 0;
    WireStatus status = WireStatus::Ok;
    int32_t predictedClass = -1;
    double serverMs = 0.0; //!< receive-to-respond latency at the server
    std::string message;   //!< human-readable detail (empty when ok)
    Tensor logits;         //!< empty on error

    /**
     * ABFT verdict flags (kIntegrityFlag*), carried in the v3 frame
     * header rather than the body so the response body layout is
     * untouched. 0 when the serving replica ran no checksum
     * comparisons -- which also keeps the frame at v1/v2.
     */
    uint8_t integrity = 0;

    bool integrityChecked() const
    {
        return (integrity & kIntegrityFlagChecked) != 0;
    }
    bool integrityViolation() const
    {
        return (integrity & kIntegrityFlagViolation) != 0;
    }
    bool integrityReExecuted() const
    {
        return (integrity & kIntegrityFlagReExecuted) != 0;
    }
};

/** Bounds-checked little-endian reader; all reads fail-soft. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size) : data_(data), size_(size) {}

    bool u8(uint8_t &v);
    bool u16(uint16_t &v);
    bool u32(uint32_t &v);
    bool u64(uint64_t &v);
    bool i32(int32_t &v);
    bool f32(float &v);
    bool f64(double &v);
    bool bytes(void *out, size_t n);
    bool str(std::string &out, size_t len);

    size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

/** Little-endian appender over a growable byte vector. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<uint8_t> &out) : out_(out) {}

    void u8(uint8_t v) { out_.push_back(v); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void f32(float v);
    void f64(double v);
    void bytes(const void *data, size_t n);

  private:
    std::vector<uint8_t> &out_;
};

/**
 * Validate the fixed 12-byte part of a header. @return Ok, BadFrame
 * (magic/type), UnsupportedVersion (not v1/v2), or PayloadTooLarge
 * (bodyLen > @p max_body). On Ok the caller must still read
 * headerExtraBytes(out.version) extension bytes and hand them to
 * decodeHeaderExtra before the body.
 */
WireStatus decodeHeader(const uint8_t *raw, size_t size, size_t max_body,
                        FrameHeader &out);

/**
 * Decode the version-dependent header extension (v2: the u64 trace
 * id; v3: trace id + u8 integrity flags) into @p out. @p size must be
 * headerExtraBytes(out.version); a v1 header is a no-op. @return Ok or
 * BadFrame.
 */
WireStatus decodeHeaderExtra(const uint8_t *raw, size_t size,
                             FrameHeader &out);

/**
 * Encode a complete frame (header + body) for @p type. The version is
 * the lowest one whose extension fields are all zero: non-zero
 * @p integrity emits v3 (trace id + flags), else a non-zero
 * @p trace_id emits v2, else v1 -- byte-identical to the pre-trace
 * wire format.
 */
std::vector<uint8_t> encodeFrame(FrameType type,
                                 const std::vector<uint8_t> &body,
                                 uint64_t trace_id = 0,
                                 uint8_t integrity = 0);

/** Request body -> bytes (frame it with encodeFrame). */
std::vector<uint8_t> encodeRequestBody(const WireRequest &request);

/** Response body -> bytes. */
std::vector<uint8_t> encodeResponseBody(const WireResponse &response);

/** Convenience: full request/response frames. */
std::vector<uint8_t> encodeRequestFrame(const WireRequest &request);
std::vector<uint8_t> encodeResponseFrame(const WireResponse &response);

/**
 * Decode a request body. @return Ok or BadFrame/BadRequest; on failure
 * @p out.corrId still carries the correlation id when the first eight
 * bytes were readable, so the error response can be matched.
 */
WireStatus decodeRequestBody(const uint8_t *data, size_t size,
                             WireRequest &out);

/** Decode a response body (client side). */
WireStatus decodeResponseBody(const uint8_t *data, size_t size,
                              WireResponse &out);

} // namespace serving
} // namespace nebula

#endif // NEBULA_SERVING_PROTOCOL_HPP
