/**
 * @file
 * Per-tenant admission quotas: token buckets layered *in front of* the
 * engine's ShedPolicy. A tenant whose bucket is empty gets a typed
 * QuotaExceeded outcome at the serving layer -- the request never
 * reaches the engine queue, so one greedy tenant cannot fill the
 * shared queue and starve another tenant's latency tail. Requests that
 * pass the bucket still face the engine's own admission control
 * (queue-full / deadline-aware shedding), which resolves as Shed.
 */

#ifndef NEBULA_SERVING_QUOTA_HPP
#define NEBULA_SERVING_QUOTA_HPP

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nebula {
namespace serving {

/** Admission quota of one tenant. */
struct TenantQuota
{
    /** Sustained admission rate (tokens refilled per second). */
    double ratePerSec = 1e9;

    /** Bucket capacity: how far a tenant may burst above the rate. */
    double burst = 1e9;
};

/** Classic token bucket; thread-safe, monotonic-clock driven. */
class TokenBucket
{
  public:
    explicit TokenBucket(const TenantQuota &quota)
        : quota_(quota), tokens_(quota.burst),
          last_(std::chrono::steady_clock::now())
    {
    }

    /** Take one token if available; false = over quota right now. */
    bool tryAcquire(std::chrono::steady_clock::time_point now =
                        std::chrono::steady_clock::now())
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const double elapsed =
            std::chrono::duration<double>(now - last_).count();
        if (elapsed > 0.0) {
            tokens_ = std::min(quota_.burst,
                               tokens_ + elapsed * quota_.ratePerSec);
            last_ = now;
        }
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

    /** Current balance after refill-at-read (telemetry; racy by nature). */
    double available(std::chrono::steady_clock::time_point now =
                         std::chrono::steady_clock::now())
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const double elapsed =
            std::chrono::duration<double>(now - last_).count();
        if (elapsed > 0.0) {
            tokens_ = std::min(quota_.burst,
                               tokens_ + elapsed * quota_.ratePerSec);
            last_ = now;
        }
        return tokens_;
    }

    const TenantQuota &quota() const { return quota_; }

  private:
    TenantQuota quota_;
    std::mutex mutex_;
    double tokens_;
    std::chrono::steady_clock::time_point last_;
};

/**
 * Tenant -> bucket table. Tenants without an explicit quota share the
 * default (each still gets a *private* bucket, so a hot default-quota
 * tenant cannot drain a stranger's tokens).
 */
class TenantTable
{
  public:
    TenantTable(TenantQuota default_quota,
                std::map<std::string, TenantQuota> overrides = {})
        : default_(default_quota), overrides_(std::move(overrides))
    {
    }

    /** Admit one request from @p tenant? (false: quota exceeded). */
    bool admit(const std::string &tenant)
    {
        return bucket(tenant).tryAcquire();
    }

    /** The tenant's bucket (created on first use). */
    TokenBucket &bucket(const std::string &tenant)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = buckets_.find(tenant);
        if (it == buckets_.end()) {
            const auto quota_it = overrides_.find(tenant);
            const TenantQuota &quota = quota_it != overrides_.end()
                                           ? quota_it->second
                                           : default_;
            it = buckets_
                     .emplace(tenant, std::make_unique<TokenBucket>(quota))
                     .first;
        }
        return *it->second;
    }

    /** One tenant's live quota state (for /statusz). */
    struct BucketStatus
    {
        std::string tenant;
        double tokens = 0.0;
        TenantQuota quota;
    };

    /** Every known tenant's bucket balance, sorted by tenant. */
    std::vector<BucketStatus> snapshot()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<BucketStatus> out;
        out.reserve(buckets_.size());
        for (auto &kv : buckets_) {
            BucketStatus status;
            status.tenant = kv.first;
            status.tokens = kv.second->available();
            status.quota = kv.second->quota();
            out.push_back(std::move(status));
        }
        return out;
    }

  private:
    TenantQuota default_;
    std::map<std::string, TenantQuota> overrides_;
    std::mutex mutex_;
    // unique_ptr for address stability across map growth (TokenBucket
    // holds a mutex and is handed out by reference).
    std::map<std::string, std::unique_ptr<TokenBucket>> buckets_;
};

} // namespace serving
} // namespace nebula

#endif // NEBULA_SERVING_QUOTA_HPP
