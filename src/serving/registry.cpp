#include "serving/registry.hpp"

#include <algorithm>
#include <chrono>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nebula {
namespace serving {

ModelInstance::ModelInstance(ServableModelSpec spec,
                             EngineConfig engine_config,
                             const ReplicaFactory &factory)
    : spec_(std::move(spec)), engine_(engine_config, factory)
{
    inputShape_ = {1, spec_.imageSize, spec_.imageSize};
    // Replicas were just programmed and no request has run yet, so the
    // quiesce inside withReplicas is free; the merged report is the
    // write-verify cost of bringing this model resident.
    engine_.withReplicas([this](ChipReplica &replica) {
        if (const ProgramReport *report = replica.programReport())
            swapCost_.merge(*report);
    });
}

ModelRegistry::ModelRegistry(RegistryConfig config)
    : config_(std::move(config))
{
    NEBULA_ASSERT(config_.residentCapacity >= 1,
                  "registry needs residentCapacity >= 1");
    for (const ServableModelSpec &spec : config_.catalog) {
        const bool inserted =
            catalog_.emplace(spec.id(), spec).second;
        NEBULA_ASSERT(inserted, "duplicate servable id ", spec.id());
    }
}

ModelRegistry::~ModelRegistry()
{
    shutdown();
}

bool
ModelRegistry::has(const std::string &id) const
{
    return catalog_.count(id) > 0;
}

std::vector<std::string>
ModelRegistry::catalogIds() const
{
    std::vector<std::string> ids;
    ids.reserve(catalog_.size());
    for (const auto &[id, spec] : catalog_)
        ids.push_back(id);
    return ids;
}

std::vector<std::string>
ModelRegistry::residentIds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {lru_.begin(), lru_.end()};
}

size_t
ModelRegistry::residentCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resident_.size();
}

uint64_t
ModelRegistry::swapIns() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return swapIns_;
}

uint64_t
ModelRegistry::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

ProgramReport
ModelRegistry::totalSwapCost() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return totalSwapCost_;
}

void
ModelRegistry::evictOneLocked()
{
    NEBULA_ASSERT(!lru_.empty(), "evict on an empty registry");
    // Prefer the least-recently-used instance nobody outside the
    // registry still references; fall back to the strict LRU victim
    // (its engine shutdown quiesces, and late submitters re-acquire).
    auto victim = std::prev(lru_.end());
    for (auto it = std::prev(lru_.end());; --it) {
        if (resident_.at(*it).use_count() == 1) {
            victim = it;
            break;
        }
        if (it == lru_.begin())
            break;
    }

    const std::string id = *victim;
    std::shared_ptr<ModelInstance> instance = resident_.at(id);
    resident_.erase(id);
    lru_.erase(victim);

    obs::TraceSpan span("serving", "model.evict");
    // Quiesce-then-teardown: shutdown waits for in-flight requests on
    // this pool, so the swap never races an evaluation.
    instance->engine().shutdown();
    ++evictions_;
    obs::MetricsRegistry::global().counter("serving.swap.evictions").inc();
    obs::MetricsRegistry::global()
        .gauge("serving.models.resident")
        .set(static_cast<double>(resident_.size()));
    NEBULA_DEBUG("serving", "evicted model ", id, " (",
                 resident_.size(), " resident)");
}

std::shared_ptr<ModelInstance>
ModelRegistry::acquire(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_)
        return nullptr;
    const auto spec_it = catalog_.find(id);
    if (spec_it == catalog_.end())
        return nullptr;

    const auto resident_it = resident_.find(id);
    if (resident_it != resident_.end()) {
        lru_.remove(id);
        lru_.push_front(id);
        lastUsed_[id] = std::chrono::steady_clock::now();
        return resident_it->second;
    }

    // Swap-in: make room, then program the model onto a fresh pool.
    while (resident_.size() >= config_.residentCapacity)
        evictOneLocked();

    obs::TraceSpan span("serving", "model.swap_in");
    const auto swap_start = std::chrono::steady_clock::now();

    EngineConfig engine_config = config_.engine;
    engine_config.numWorkers = config_.workersPerModel;
    NebulaConfig chip_config;
    chip_config.abft = config_.abft;
    if (config_.abft && !engine_config.abft.fallback)
        engine_config.abft.fallback =
            ServableLoader::global().makeFallbackFactory(spec_it->second);
    ReplicaFactory factory =
        ServableLoader::global().makeFactory(spec_it->second,
                                             config_.reliability,
                                             chip_config);
    auto instance = std::make_shared<ModelInstance>(
        spec_it->second, engine_config, factory);

    resident_.emplace(id, instance);
    lru_.push_front(id);
    lastUsed_[id] = std::chrono::steady_clock::now();
    ++swapIns_;
    totalSwapCost_.merge(instance->swapCost());

    const double swap_ms =
        1e3 * std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - swap_start)
                  .count();
    span.arg("swap_ms", swap_ms);
    auto &metrics = obs::MetricsRegistry::global();
    metrics.counter("serving.swap.count").inc();
    metrics.counter("serving.swap.pulses")
        .inc(static_cast<double>(instance->swapCost().pulses));
    metrics.counter("serving.swap.energy_j")
        .inc(instance->swapCost().programEnergy);
    metrics.observe("serving.swap.ms", swap_ms, 0.0, 10000.0, 100);
    metrics.gauge("serving.models.resident")
        .set(static_cast<double>(resident_.size()));
    NEBULA_DEBUG("serving", "swapped in model ", id, " in ", swap_ms,
                 " ms (", instance->swapCost().pulses, " pulses, ",
                 instance->swapCost().programEnergy, " J)");
    return instance;
}

std::vector<ModelRegistry::ModelStatus>
ModelRegistry::status() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    std::vector<ModelStatus> out;
    out.reserve(catalog_.size());
    for (const auto &[id, spec] : catalog_) {
        ModelStatus status;
        status.id = id;
        const auto resident_it = resident_.find(id);
        if (resident_it != resident_.end()) {
            status.resident = true;
            status.instance = resident_it->second;
            status.swapCost = resident_it->second->swapCost();
        }
        const auto used_it = lastUsed_.find(id);
        if (used_it != lastUsed_.end())
            status.lruAgeSeconds =
                std::chrono::duration<double>(now - used_it->second).count();
        out.push_back(std::move(status));
    }
    return out;
}

void
ModelRegistry::shutdown()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_)
        return;
    shutdown_ = true;
    for (auto &[id, instance] : resident_)
        instance->engine().shutdown();
    resident_.clear();
    lru_.clear();
    obs::MetricsRegistry::global().gauge("serving.models.resident").set(0.0);
}

} // namespace serving
} // namespace nebula
