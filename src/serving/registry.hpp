/**
 * @file
 * Multi-tenant model registry + weight-swap scheduler. The registry
 * owns a catalog of servable specs (family x mode) and keeps at most
 * residentCapacity of them *resident*: programmed onto their own
 * replica pool behind a private InferenceEngine. A request for a cold
 * model triggers a swap-in -- program-on-demand with LRU eviction --
 * and each swap is costed through the reliability layer's write-verify
 * accounting (ProgramReport pulses/energy), surfaced as
 * `serving.swap.*` metrics: on NEBULA the price of changing tenants'
 * resident working set is literally program pulses and Joules.
 *
 * Eviction safety: evicting an instance calls
 * InferenceEngine::shutdown(), which quiesces (waitIdle) before the
 * replicas are torn down -- a swap can never race an in-flight request
 * on the evicted pool. A handler that still holds the evicted
 * shared_ptr and submits afterwards gets EngineStoppedError and simply
 * re-acquires (the model swaps back in).
 */

#ifndef NEBULA_SERVING_REGISTRY_HPP
#define NEBULA_SERVING_REGISTRY_HPP

#include <chrono>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "reliability/mitigation.hpp"
#include "runtime/engine.hpp"
#include "serving/models.hpp"

namespace nebula {
namespace serving {

/** Write-verify on: swap-ins report real pulse/energy costs. */
inline ReliabilityConfig
defaultSwapAccounting()
{
    ReliabilityConfig rel;
    rel.writeVerify.enabled = true;
    return rel;
}

/** Registry knobs. */
struct RegistryConfig
{
    /** The servable catalog; ids (family/mode) must be unique. */
    std::vector<ServableModelSpec> catalog;

    /** Max models resident (programmed) at once. */
    size_t residentCapacity = 2;

    /** Worker threads per resident model's engine. */
    int workersPerModel = 1;

    /**
     * Engine template for every instance (queue capacity, shed policy,
     * deadlines, timesteps); numWorkers is overridden per model.
     */
    EngineConfig engine;

    /** Programming scenario for swap-ins (write-verify accounting). */
    ReliabilityConfig reliability = defaultSwapAccounting();

    /**
     * Online ABFT integrity checking on every chip-backed servable:
     * checksum columns on the crossbars (NebulaConfig::abft), hedged
     * re-execution of flagged requests on the mode's functional
     * fallback, and immediate health-probe escalation. Off keeps the
     * serving path byte-identical to an ABFT-unaware registry.
     */
    bool abft = false;
};

/** One resident model: spec + engine + the cost of swapping it in. */
class ModelInstance
{
  public:
    ModelInstance(ServableModelSpec spec, EngineConfig engine_config,
                  const ReplicaFactory &factory);

    InferenceEngine &engine() { return engine_; }
    const ServableModelSpec &spec() const { return spec_; }

    /** Write-verify programming cost of this swap-in (all replicas). */
    const ProgramReport &swapCost() const { return swapCost_; }

    /** Expected request-image shape (C, H, W). */
    const std::vector<int> &inputShape() const { return inputShape_; }

  private:
    ServableModelSpec spec_;
    InferenceEngine engine_;
    ProgramReport swapCost_;
    std::vector<int> inputShape_;
};

/** LRU-managed registry of resident model instances. */
class ModelRegistry
{
  public:
    explicit ModelRegistry(RegistryConfig config);

    /** Shuts every resident engine down. */
    ~ModelRegistry();

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Resolve @p id ("family/mode") to a resident instance, swapping
     * it in (and evicting the least-recently-used resident) if needed.
     * @return null when the id is not in the catalog. May block for
     * the duration of a swap (programming) or an eviction (quiesce).
     */
    std::shared_ptr<ModelInstance> acquire(const std::string &id);

    /** True when @p id is in the catalog (resident or cold). */
    bool has(const std::string &id) const;

    /** Catalog ids, sorted. */
    std::vector<std::string> catalogIds() const;

    /** Resident ids, most recently used first. */
    std::vector<std::string> residentIds() const;

    size_t residentCount() const;
    size_t residentCapacity() const { return config_.residentCapacity; }

    /** Swap-ins performed (first-time programming included). */
    uint64_t swapIns() const;

    /** Evictions performed (quiesce + teardown of a resident pool). */
    uint64_t evictions() const;

    /** Cumulative write-verify cost across every swap-in. */
    ProgramReport totalSwapCost() const;

    /** One catalog entry's live state (for /statusz). */
    struct ModelStatus
    {
        std::string id;
        bool resident = false;

        /** Seconds since the model was last acquired (0 if never). */
        double lruAgeSeconds = 0.0;

        /** Write-verify cost of the *current* residency (0 if cold). */
        ProgramReport swapCost;

        /** Live instance (null when cold) -- engine counters readable. */
        std::shared_ptr<ModelInstance> instance;
    };

    /** Every catalog entry's state, sorted by id. */
    std::vector<ModelStatus> status() const;

    /** Quiesce and tear down every resident instance. Idempotent. */
    void shutdown();

  private:
    /** Evict the LRU resident (callers hold mutex_). */
    void evictOneLocked();

    RegistryConfig config_;
    std::map<std::string, ServableModelSpec> catalog_;

    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<ModelInstance>> resident_;
    std::list<std::string> lru_; //!< front = most recently used
    /** Last acquire() per id (survives eviction; LRU-age telemetry). */
    std::map<std::string, std::chrono::steady_clock::time_point> lastUsed_;
    uint64_t swapIns_ = 0;
    uint64_t evictions_ = 0;
    ProgramReport totalSwapCost_;
    bool shutdown_ = false;
};

} // namespace serving
} // namespace nebula

#endif // NEBULA_SERVING_REGISTRY_HPP
