#include "serving/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reliability/health.hpp"

namespace nebula {
namespace serving {

namespace {

/** recv exactly @p n bytes; false on EOF, error or timeout. */
bool
readFully(int fd, void *buf, size_t n)
{
    uint8_t *p = static_cast<uint8_t *>(buf);
    while (n > 0) {
        const ssize_t got = ::recv(fd, p, n, 0);
        if (got > 0) {
            p += got;
            n -= static_cast<size_t>(got);
            continue;
        }
        if (got < 0 && errno == EINTR)
            continue;
        return false; // EOF (0), timeout or hard error
    }
    return true;
}

/** send the whole buffer; false on error. Never raises SIGPIPE. */
bool
writeFully(int fd, const void *buf, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(buf);
    while (n > 0) {
        const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
        if (sent > 0) {
            p += sent;
            n -= static_cast<size_t>(sent);
            continue;
        }
        if (sent < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

WireStatus
fromRuntimeError(RuntimeErrorKind kind)
{
    switch (kind) {
    case RuntimeErrorKind::None: return WireStatus::Ok;
    case RuntimeErrorKind::Timeout: return WireStatus::Timeout;
    case RuntimeErrorKind::Shed: return WireStatus::Shed;
    case RuntimeErrorKind::EngineStopped: return WireStatus::EngineStopped;
    case RuntimeErrorKind::ReplicaFault: return WireStatus::ReplicaFault;
    case RuntimeErrorKind::Cancelled: return WireStatus::Cancelled;
    }
    return WireStatus::Internal;
}

constexpr double kLatencyHistLoMs = 0.0;
constexpr double kLatencyHistHiMs = 500.0;
constexpr int kLatencyHistBuckets = 500;

} // namespace

/** One live client connection: reader + writer + response pipeline. */
struct ServingServer::Connection
{
    /** One slot of the in-order response pipeline. */
    struct Pending
    {
        WireResponse ready;  //!< used when !future.valid()
        std::future<InferenceResult> future;
        std::shared_ptr<ModelInstance> instance;
        std::string tenant;
        std::string model; //!< catalog id, for SLO / energy attribution
        std::chrono::steady_clock::time_point received;
        bool closeAfter = false;
    };

    int fd = -1;
    uint64_t id = 0;
    std::thread reader;
    std::thread writer;

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Pending> pipeline;
    bool readerDone = false;

    std::atomic<bool> dead{false};     //!< socket broken: stop writing
    std::atomic<bool> readerExited{false};
    std::atomic<bool> writerExited{false};

    bool finished() const
    {
        return readerExited.load() && writerExited.load();
    }
};

ServingServer::ServingServer(ServerConfig config,
                             std::shared_ptr<ModelRegistry> registry)
    : config_(std::move(config)), registry_(std::move(registry)),
      tenants_(config_.defaultQuota, config_.tenantQuotas),
      slo_(config_.slo)
{
    NEBULA_ASSERT(registry_, "server needs a registry");
}

ServingServer::~ServingServer()
{
    stop();
}

void
ServingServer::start()
{
    NEBULA_ASSERT(listenFd_ < 0, "server already started");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("serving: socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("serving: bad host " + config_.host);
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, config_.backlog) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("serving: bind/listen failed on " +
                                 config_.host + ":" +
                                 std::to_string(config_.port));
    }

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    running_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });

    if (config_.adminEnabled) {
        AdminConfig admin_config;
        admin_config.port = config_.adminPort;
        admin_config.host = config_.host;
        admin_ = std::make_unique<AdminServer>(admin_config);
        admin_->handle("/metrics", [this] {
            // Fold the rolling SLO state into the registry right before
            // rendering, so a scrape always sees fresh slo.* gauges.
            auto &registry = obs::MetricsRegistry::global();
            slo_.exportTo(registry);
            AdminResponse response;
            response.contentType =
                "text/plain; version=0.0.4; charset=utf-8";
            response.body = registry.toPrometheus();
            return response;
        });
        admin_->handle("/statusz", [this] {
            AdminResponse response;
            response.contentType = "application/json";
            response.body = statuszJson();
            return response;
        });
        admin_->handle("/healthz", [this] {
            AdminResponse response;
            if (running_.load()) {
                response.body = "ok\n";
            } else {
                response.status = 503;
                response.body = "stopping\n";
            }
            return response;
        });
        admin_->start();
        NEBULA_DEBUG("serving", "admin endpoint on ", config_.host, ":",
                     admin_->port());
    }

    NEBULA_DEBUG("serving", "server listening on ", config_.host, ":",
                 port_);
}

void
ServingServer::acceptLoop()
{
    obs::setThreadName("serving.accept");
    while (running_.load()) {
        sockaddr_in peer{};
        socklen_t len = sizeof(peer);
        const int fd = ::accept(
            listenFd_, reinterpret_cast<sockaddr *>(&peer), &len);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listener closed by stop()
        }
        reapFinished();

        std::lock_guard<std::mutex> lock(connectionsMutex_);
        if (!running_.load() ||
            connections_.size() >=
                static_cast<size_t>(config_.maxConnections)) {
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->id = accepted_.fetch_add(1);
        Connection &ref = *conn;
        conn->reader = std::thread([this, &ref] { readerLoop(ref); });
        conn->writer = std::thread([this, &ref] { writerLoop(ref); });
        connections_.push_back(std::move(conn));
        obs::MetricsRegistry::global().counter("serving.connections").inc();
    }
}

void
ServingServer::enqueueReady(Connection &conn, WireResponse response,
                            bool close_after)
{
    std::unique_lock<std::mutex> lock(conn.mutex);
    conn.cv.wait(lock, [&] {
        return conn.pipeline.size() < config_.pipelineDepth;
    });
    Connection::Pending pending;
    pending.ready = std::move(response);
    pending.closeAfter = close_after;
    pending.received = std::chrono::steady_clock::now();
    conn.pipeline.push_back(std::move(pending));
    lock.unlock();
    conn.cv.notify_all();
}

bool
ServingServer::dispatch(Connection &conn, WireRequest request)
{
    obs::TraceSpan span("serving", "request", config_.traceRequests);
    span.arg("corr_id", static_cast<double>(request.corrId));
    // Cross-process flow: the client emitted the flow start under this
    // id; the step here and the one in the worker link submit ->
    // dispatch -> evaluate into one Perfetto track.
    obs::recordFlowStep("serving", "request.flow", request.traceId,
                        config_.traceRequests);
    auto &metrics = obs::MetricsRegistry::global();
    const auto received = std::chrono::steady_clock::now();
    const std::string catalog_id =
        request.model + "/" + toString(request.mode);

    WireResponse response;
    response.corrId = request.corrId;

    // Admission layer 1: the tenant's token bucket. A refusal here is
    // the typed quota shed -- the request never reaches the engine
    // queue, so greedy tenants cannot crowd out the others.
    if (!tenants_.admit(request.tenant)) {
        metrics
            .counter("serving.shed", {{"tenant", request.tenant},
                                      {"reason", "quota"}})
            .inc();
        slo_.record(request.tenant, catalog_id, 0.0,
                    /*server_error=*/false, /*client_error=*/true);
        response.status = WireStatus::QuotaExceeded;
        response.message = "tenant over admission quota";
        enqueueReady(conn, std::move(response));
        return true;
    }

    std::shared_ptr<ModelInstance> instance = registry_->acquire(catalog_id);
    if (!instance) {
        slo_.record(request.tenant, catalog_id, 0.0,
                    /*server_error=*/false, /*client_error=*/true);
        response.status = WireStatus::UnknownModel;
        response.message = "no servable '" + catalog_id + "' in catalog";
        enqueueReady(conn, std::move(response));
        return true;
    }

    if (request.image.shape() != instance->inputShape()) {
        slo_.record(request.tenant, catalog_id, 0.0,
                    /*server_error=*/false, /*client_error=*/true);
        response.status = WireStatus::BadRequest;
        response.message = "image shape does not match model input";
        enqueueReady(conn, std::move(response));
        return true;
    }

    metrics.counter("serving.requests", {{"tenant", request.tenant}}).inc();

    // Admission layer 2: the engine (queue-full / deadline shedding,
    // typed outcomes inside the future). An eviction racing this
    // submit surfaces as EngineStoppedError: re-acquire (the registry
    // swaps the model back in) and retry.
    std::future<InferenceResult> future;
    bool submitted = false;
    for (int attempt = 0; attempt < 3 && !submitted; ++attempt) {
        InferenceRequest engine_request;
        engine_request.image = request.image;
        engine_request.timesteps = static_cast<int>(request.timesteps);
        engine_request.seed = request.seed;
        engine_request.traceId = request.traceId;
        engine_request.deadlineNs = request.deadlineNs != 0
                                        ? request.deadlineNs
                                        : config_.defaultDeadlineNs;
        try {
            future = instance->engine().submit(std::move(engine_request));
            submitted = true;
        } catch (const EngineStoppedError &) {
            instance = registry_->acquire(catalog_id);
            if (!instance)
                break;
        }
    }
    if (!submitted) {
        slo_.record(request.tenant, catalog_id, 0.0,
                    /*server_error=*/true);
        response.status = WireStatus::EngineStopped;
        response.message = "model engine stopped during submit";
        enqueueReady(conn, std::move(response));
        return true;
    }

    std::unique_lock<std::mutex> lock(conn.mutex);
    conn.cv.wait(lock, [&] {
        return conn.pipeline.size() < config_.pipelineDepth;
    });
    Connection::Pending pending;
    pending.ready.corrId = request.corrId;
    pending.future = std::move(future);
    pending.instance = std::move(instance);
    pending.tenant = request.tenant;
    pending.model = catalog_id;
    pending.received = received;
    conn.pipeline.push_back(std::move(pending));
    lock.unlock();
    conn.cv.notify_all();
    return true;
}

void
ServingServer::readerLoop(Connection &conn)
{
    obs::setThreadName("serving.conn" + std::to_string(conn.id) + ".r");
    bool keep_going = true;
    while (keep_going) {
        uint8_t raw_header[kHeaderBytes];
        if (!readFully(conn.fd, raw_header, sizeof(raw_header)))
            break; // clean EOF or mid-frame disconnect: just stop

        FrameHeader header;
        const WireStatus header_status = decodeHeader(
            raw_header, sizeof(raw_header), config_.maxBodyBytes, header);
        if (header_status != WireStatus::Ok ||
            header.type != FrameType::Request) {
            // The stream cannot be resynchronized after a bad header:
            // answer with the typed error, then close.
            WireResponse err;
            err.status = header_status == WireStatus::Ok
                             ? WireStatus::BadFrame
                             : header_status;
            err.message = "rejected frame header";
            obs::MetricsRegistry::global()
                .counter("serving.bad_frames")
                .inc();
            enqueueReady(conn, std::move(err), /*close_after=*/true);
            break;
        }

        // v2+ frames carry a header extension (trace context; v3 adds
        // integrity flags) after the fixed header; v1 frames have none
        // (extra == 0) and skip this read.
        const size_t extra = headerExtraBytes(header.version);
        if (extra > 0) {
            uint8_t raw_extra[kMaxHeaderExtraBytes];
            if (!readFully(conn.fd, raw_extra, extra))
                break; // disconnect mid-header
            if (decodeHeaderExtra(raw_extra, extra, header) !=
                WireStatus::Ok)
                break;
        }

        std::vector<uint8_t> body(header.bodyLen);
        if (header.bodyLen > 0 &&
            !readFully(conn.fd, body.data(), body.size()))
            break; // disconnect mid-body

        WireRequest request;
        const WireStatus decode_status =
            decodeRequestBody(body.data(), body.size(), request);
        request.traceId = header.traceId;
        if (decode_status != WireStatus::Ok) {
            WireResponse err;
            err.corrId = request.corrId; // best-effort correlation
            err.status = decode_status;
            err.message = "rejected request body";
            obs::MetricsRegistry::global()
                .counter("serving.bad_frames")
                .inc();
            // A malformed *frame* poisons the framing; a semantically
            // bad (but well-framed) request does not.
            const bool fatal = decode_status != WireStatus::BadRequest;
            enqueueReady(conn, std::move(err), fatal);
            if (fatal)
                break;
            continue;
        }

        keep_going = dispatch(conn, std::move(request));
    }

    {
        std::lock_guard<std::mutex> lock(conn.mutex);
        conn.readerDone = true;
    }
    conn.cv.notify_all();
    conn.readerExited.store(true);
}

void
ServingServer::writerLoop(Connection &conn)
{
    obs::setThreadName("serving.conn" + std::to_string(conn.id) + ".w");
    auto &metrics = obs::MetricsRegistry::global();
    while (true) {
        std::unique_lock<std::mutex> lock(conn.mutex);
        conn.cv.wait(lock, [&] {
            return !conn.pipeline.empty() || conn.readerDone;
        });
        if (conn.pipeline.empty())
            break; // readerDone and drained
        Connection::Pending pending = std::move(conn.pipeline.front());
        conn.pipeline.pop_front();
        lock.unlock();
        conn.cv.notify_all(); // free a pipeline slot for the reader

        WireResponse response = std::move(pending.ready);
        if (pending.future.valid()) {
            // The engine guarantees a typed terminal outcome -- this
            // get() never hangs on a broken promise.
            InferenceResult result = pending.future.get();
            response.status = fromRuntimeError(result.error);
            response.message = result.errorMessage;
            response.predictedClass = result.predictedClass;
            if (result.ok())
                response.logits = std::move(result.logits);
            // ABFT verdict onto the wire (v3 header flags). All three
            // flags zero keeps the response frame at v1 -- abft=off
            // traffic is byte-identical to the pre-integrity format.
            if (result.integrity.checked())
                response.integrity |= kIntegrityFlagChecked;
            if (!result.integrity.clean())
                response.integrity |= kIntegrityFlagViolation;
            if (result.integrity.reExecuted)
                response.integrity |= kIntegrityFlagReExecuted;
            if ((response.integrity &
                 (kIntegrityFlagViolation | kIntegrityFlagReExecuted)) != 0)
                metrics
                    .counter("serving.abft.flagged",
                             {{"tenant", pending.tenant},
                              {"model", pending.model}})
                    .inc();

            const double ms =
                1e3 * std::chrono::duration<double>(
                          std::chrono::steady_clock::now() -
                          pending.received)
                          .count();
            response.serverMs = ms;
            // Engine outcomes are all server-owned: anything but Ok
            // burns error budget (client-caused refusals never reach
            // the engine; dispatch() records those as excluded).
            slo_.record(pending.tenant, pending.model, ms,
                        /*server_error=*/response.status != WireStatus::Ok);
            if (result.ok()) {
                // Per-request energy attribution: bill the chip-model
                // Joules this evaluation consumed to the tenant that
                // asked for it, broken down by component. Functional
                // backends report zero (the series still exists, so a
                // reader can distinguish "no energy model" from "no
                // traffic").
                const std::map<std::string, double> components = {
                    {"crossbar", result.energy.crossbarJ},
                    {"driver", result.energy.driverJ},
                    {"adc", result.energy.adcJ},
                    {"neuron", result.energy.neuronJ},
                    {"noc", result.energy.nocJ},
                };
                for (const auto &[component, joules] : components)
                    metrics
                        .counter("telemetry.energy_j",
                                 {{"tenant", pending.tenant},
                                  {"model", pending.model},
                                  {"component", component}})
                        .inc(joules);
                metrics
                    .counter("telemetry.inferences",
                             {{"tenant", pending.tenant},
                              {"model", pending.model}})
                    .inc();
                metrics
                    .counter("telemetry.tenant.energy_j",
                             {{"tenant", pending.tenant}})
                    .inc(result.energy.total());
                metrics
                    .counter("telemetry.tenant.inferences",
                             {{"tenant", pending.tenant}})
                    .inc();
            }
            metrics.observe("serving.latency_ms", ms, kLatencyHistLoMs,
                            kLatencyHistHiMs, kLatencyHistBuckets,
                            {{"tenant", pending.tenant}});
            metrics
                .counter("serving.responses",
                         {{"tenant", pending.tenant},
                          {"status", toString(response.status)}})
                .inc();
            if (response.status == WireStatus::Shed)
                metrics
                    .counter("serving.shed",
                             {{"tenant", pending.tenant},
                              {"reason", "engine"}})
                    .inc();
        }

        if (!conn.dead.load()) {
            const std::vector<uint8_t> frame =
                encodeResponseFrame(response);
            if (!writeFully(conn.fd, frame.data(), frame.size()))
                conn.dead.store(true);
        }
        if (pending.closeAfter) {
            // Unblock the reader (it may be mid-recv on this fd).
            ::shutdown(conn.fd, SHUT_RDWR);
            conn.dead.store(true);
        }
    }
    conn.writerExited.store(true);
}

void
ServingServer::reapFinished()
{
    std::lock_guard<std::mutex> lock(connectionsMutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
        Connection &conn = **it;
        if (!conn.finished()) {
            ++it;
            continue;
        }
        conn.reader.join();
        conn.writer.join();
        ::close(conn.fd);
        it = connections_.erase(it);
    }
}

void
ServingServer::stop()
{
    if (!running_.exchange(false)) {
        // start() never ran (or stop() already did): nothing to join.
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return;
    }

    // running_ is already false, so a late /healthz answers 503; take
    // the endpoint down before the data plane drains.
    if (admin_)
        admin_->stop();

    // Kill the listener first so no new connections arrive.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    if (acceptThread_.joinable())
        acceptThread_.join();
    listenFd_ = -1;

    // Then unblock and drain every live connection.
    std::vector<std::unique_ptr<Connection>> doomed;
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        doomed.swap(connections_);
    }
    for (auto &conn : doomed)
        ::shutdown(conn->fd, SHUT_RDWR);
    for (auto &conn : doomed) {
        conn->reader.join();
        conn->writer.join();
        ::close(conn->fd);
    }
    NEBULA_DEBUG("serving", "server stopped after ", accepted_.load(),
                 " connections");
}

std::string
ServingServer::statuszJson()
{
    std::string out;
    out.reserve(4096);
    out += "{\"server\":{";
    out += "\"running\":";
    out += running_.load() ? "true" : "false";
    out += ",\"port\":" + std::to_string(port_);
    out += ",\"adminPort\":" + std::to_string(adminPort());
    out += ",\"connectionsAccepted\":" + std::to_string(accepted_.load());
    out += "},\"registry\":{";
    out += "\"residentCapacity\":" +
           std::to_string(registry_->residentCapacity());
    out += ",\"residentCount\":" + std::to_string(registry_->residentCount());
    out += ",\"swapIns\":" + std::to_string(registry_->swapIns());
    out += ",\"evictions\":" + std::to_string(registry_->evictions());
    const ProgramReport total_swap = registry_->totalSwapCost();
    out += ",\"totalSwapPulses\":" + std::to_string(total_swap.pulses);
    out += ",\"totalSwapEnergyJ\":" + json::number(total_swap.programEnergy);
    out += "},\"models\":[";

    bool first = true;
    for (const ModelRegistry::ModelStatus &model : registry_->status()) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"id\":" + json::quoted(model.id);
        out += ",\"resident\":";
        out += model.resident ? "true" : "false";
        out += ",\"lruAgeSeconds\":" + json::number(model.lruAgeSeconds);
        out += ",\"swapPulses\":" + std::to_string(model.swapCost.pulses);
        out +=
            ",\"swapEnergyJ\":" + json::number(model.swapCost.programEnergy);
        if (model.instance) {
            InferenceEngine &engine = model.instance->engine();
            out += ",\"engine\":{";
            out += "\"queueDepth\":" + std::to_string(engine.queueDepth());
            out += ",\"inflight\":" + std::to_string(engine.inflight());
            out += ",\"submitted\":" + std::to_string(engine.submitted());
            out += ",\"completed\":" + std::to_string(engine.completed());
            out += ",\"shed\":" + std::to_string(engine.shedCount());
            out += ",\"workerRestarts\":" +
                   std::to_string(engine.workerRestarts());
            out += ",\"quarantined\":" +
                   std::to_string(engine.quarantinedCount());
            out += ",\"numWorkers\":" + std::to_string(engine.numWorkers());
            out += '}';
            if (const HealthMonitor *health = engine.health()) {
                out += ",\"health\":[";
                for (int slot = 0; slot < health->slotCount(); ++slot) {
                    if (slot > 0)
                        out += ',';
                    out += "{\"slot\":" + std::to_string(slot);
                    out += ",\"state\":" +
                           json::quoted(toString(health->health(slot)));
                    out += ",\"lastDeviation\":" +
                           json::number(health->lastDeviation(slot));
                    out += '}';
                }
                out += ']';
            }
        }
        out += '}';
    }
    out += "],\"tenants\":[";

    first = true;
    for (const TenantTable::BucketStatus &tenant : tenants_.snapshot()) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"tenant\":" + json::quoted(tenant.tenant);
        out += ",\"tokens\":" + json::number(tenant.tokens);
        out += ",\"ratePerSec\":" + json::number(tenant.quota.ratePerSec);
        out += ",\"burst\":" + json::number(tenant.quota.burst);
        out += '}';
    }
    out += "],\"slo\":[";

    first = true;
    for (const obs::SloSnapshot &cell : slo_.snapshotAll()) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"tenant\":" + json::quoted(cell.tenant);
        out += ",\"model\":" + json::quoted(cell.model);
        out += ",\"p50Ms\":" + json::number(cell.p50Ms);
        out += ",\"p95Ms\":" + json::number(cell.p95Ms);
        out += ",\"p99Ms\":" + json::number(cell.p99Ms);
        out += ",\"good\":" + json::number(cell.good);
        out += ",\"bad\":" + json::number(cell.bad);
        out += ",\"excluded\":" + json::number(cell.excluded);
        out += ",\"burnRate\":" + json::number(cell.burnRate);
        out += ",\"budgetExhausted\":";
        out += cell.budgetExhausted() ? "true" : "false";
        out += '}';
    }
    out += "]}";
    return out;
}

} // namespace serving
} // namespace nebula
