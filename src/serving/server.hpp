/**
 * @file
 * Socket front-end: a small TCP server speaking the length-prefixed
 * binary protocol of serving/protocol.hpp over a multi-tenant
 * ModelRegistry.
 *
 * Per connection the server runs a reader thread (frame in -> quota
 * check -> registry acquire -> InferenceEngine::submit) and a writer
 * thread draining a bounded pipeline of pending futures in request
 * order -- so a connection can pipeline many requests while responses
 * stay FIFO. Every outcome a client can observe is typed: engine
 * outcomes map 1:1 onto wire statuses, quota refusals are
 * QuotaExceeded, malformed input is BadFrame / UnsupportedVersion /
 * PayloadTooLarge (answered when the stream still permits, then the
 * connection closes -- the framing cannot be trusted afterwards).
 *
 * Observability: per-tenant serving.requests / serving.shed counters,
 * serving.latency_ms histograms (p50/p95/p99 via snapshot) and
 * serving-category trace spans land in MetricsRegistry::global().
 */

#ifndef NEBULA_SERVING_SERVER_HPP
#define NEBULA_SERVING_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/slo.hpp"
#include "serving/admin.hpp"
#include "serving/protocol.hpp"
#include "serving/quota.hpp"
#include "serving/registry.hpp"

namespace nebula {
namespace serving {

/** Front-end knobs. */
struct ServerConfig
{
    /** Listen port; 0 binds an ephemeral port (read back via port()). */
    uint16_t port = 0;

    /** Loopback-only by default; set to "0.0.0.0" to expose. */
    std::string host = "127.0.0.1";

    int backlog = 16;

    /** Connections beyond this are accepted and immediately closed. */
    int maxConnections = 64;

    /** Frames with a larger length prefix get PayloadTooLarge. */
    size_t maxBodyBytes = 1 << 24;

    /** Per-connection pending-response pipeline depth (backpressure). */
    size_t pipelineDepth = 64;

    /** Deadline for requests that do not carry one (0: none). */
    uint64_t defaultDeadlineNs = 0;

    /** Admission quota for tenants without an explicit entry. */
    TenantQuota defaultQuota;

    /** Per-tenant quota overrides. */
    std::map<std::string, TenantQuota> tenantQuotas;

    /** Emit serving trace spans when a TraceSession is active. */
    bool traceRequests = true;

    /** Per-(tenant, model) rolling SLO objective and window shape. */
    obs::SloConfig slo;

    /**
     * Start the admin/telemetry HTTP endpoint (/metrics, /statusz,
     * /healthz) alongside the wire protocol listener.
     */
    bool adminEnabled = false;

    /** Admin listen port (0: ephemeral, read back via adminPort()). */
    uint16_t adminPort = 0;
};

/** The serving front-end; one instance per process/port. */
class ServingServer
{
  public:
    ServingServer(ServerConfig config,
                  std::shared_ptr<ModelRegistry> registry);

    /** stop()s if the caller has not. */
    ~ServingServer();

    ServingServer(const ServingServer &) = delete;
    ServingServer &operator=(const ServingServer &) = delete;

    /** Bind, listen, start accepting. Throws std::runtime_error. */
    void start();

    /** Close the listener and every connection; join all threads. */
    void stop();

    /** Bound port (valid after start()). */
    uint16_t port() const { return port_; }

    bool running() const { return running_.load(); }

    uint64_t connectionsAccepted() const { return accepted_.load(); }

    ModelRegistry &registry() { return *registry_; }

    /** Rolling per-(tenant, model) SLO state fed by the writer loops. */
    obs::SloTracker &slo() { return slo_; }

    /** Admin endpoint port (0 unless adminEnabled and started). */
    uint16_t adminPort() const { return admin_ ? admin_->port() : 0; }

    /**
     * The /statusz document: engine queue/inflight/worker state, health
     * slots, registry residency + LRU ages + swap cost, tenant token
     * balances and SLO snapshots. Exposed for tests; the admin handler
     * serves exactly this string.
     */
    std::string statuszJson();

  private:
    struct Connection;

    void acceptLoop();
    void readerLoop(Connection &conn);
    void writerLoop(Connection &conn);

    /** Serve one decoded request; returns false to close the stream. */
    bool dispatch(Connection &conn, WireRequest request);

    /** Queue an already-resolved response on the writer pipeline. */
    void enqueueReady(Connection &conn, WireResponse response,
                      bool close_after = false);

    void reapFinished();

    ServerConfig config_;
    std::shared_ptr<ModelRegistry> registry_;
    TenantTable tenants_;
    obs::SloTracker slo_;
    std::unique_ptr<AdminServer> admin_;

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread acceptThread_;
    std::atomic<bool> running_{false};
    std::atomic<uint64_t> accepted_{0};

    std::mutex connectionsMutex_;
    std::vector<std::unique_ptr<Connection>> connections_;
};

} // namespace serving
} // namespace nebula

#endif // NEBULA_SERVING_SERVER_HPP
