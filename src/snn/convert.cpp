#include "snn/convert.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "nn/quantize.hpp"

namespace nebula {

void
SpikingModel::resetState()
{
    for (int i : ifLayerIndices)
        static_cast<IfLayer &>(net.layer(i)).resetState();
}

SpikingModel
SpikingModel::clone() const
{
    SpikingModel copy;
    copy.net = net.clone();
    copy.ifLayerIndices = ifLayerIndices;
    copy.lambdas = lambdas;
    copy.sourceLayerOf = sourceLayerOf;
    return copy;
}

IfLayer &
SpikingModel::ifLayer(int k)
{
    NEBULA_ASSERT(k >= 0 && k < static_cast<int>(ifLayerIndices.size()),
                  "IF layer index out of range");
    return static_cast<IfLayer &>(
        net.layer(ifLayerIndices[static_cast<size_t>(k)]));
}

namespace {

bool
isActivation(LayerKind kind)
{
    return kind == LayerKind::Relu || kind == LayerKind::ClippedRelu;
}

/** Scale a weight layer: w *= in/out, b /= out. */
void
normalizeWeightLayer(Layer &layer, float lambda_in, float lambda_out)
{
    auto params = layer.parameters();
    NEBULA_ASSERT(!params.empty(), "weight layer without parameters");
    Tensor &w = *params[0];
    const float w_scale = lambda_in / lambda_out;
    for (long long i = 0; i < w.size(); ++i)
        w[i] *= w_scale;
    if (params.size() > 1) {
        Tensor &b = *params[1];
        for (long long i = 0; i < b.size(); ++i)
            b[i] /= lambda_out;
    }
}

} // namespace

SpikingModel
convertToSnn(Network &ann, const Tensor &calibration,
             const ConversionConfig &config)
{
    if (ann.hasBatchNorm())
        ann.foldBatchNorm();

    // Collect ANN activations for the normalization scales.
    std::vector<Tensor> outputs;
    ann.forwardCollect(calibration, outputs);

    const int n = ann.numLayers();

    // lambda_out[i]: normalization scale of source layer i's output.
    std::vector<float> lambda_out(static_cast<size_t>(n), 1.0f);
    float running = 1.0f;
    for (int i = 0; i < n; ++i) {
        if (ann.layer(i).isWeightLayer()) {
            // Scale of this layer's output = scale of the next activation
            // (pools/flattens in between are scale-preserving); if there
            // is no later activation this is the output layer.
            float lambda = 0.0f;
            bool found = false;
            for (int j = i + 1; j < n; ++j) {
                if (ann.layer(j).isWeightLayer())
                    break;
                if (isActivation(ann.layer(j).kind())) {
                    lambda = absPercentile(outputs[static_cast<size_t>(j)],
                                           config.percentile);
                    found = true;
                    break;
                }
            }
            if (!found)
                lambda = absPercentile(outputs[static_cast<size_t>(i)],
                                       config.percentile);
            if (lambda <= 1e-6f) {
                NEBULA_WARN("degenerate activation scale at layer ", i,
                            "; clamping");
                lambda = 1e-6f;
            }
            running = lambda;
        }
        lambda_out[static_cast<size_t>(i)] = running;
    }

    // Build the converted network.
    SpikingModel model;
    model.net.setName(ann.name() + "-snn");

    float lambda_in = 1.0f;
    for (int i = 0; i < n; ++i) {
        Layer &src = ann.layer(i);
        const LayerKind kind = src.kind();
        const float l_out = lambda_out[static_cast<size_t>(i)];

        if (src.isWeightLayer()) {
            LayerPtr copy = src.clone();
            normalizeWeightLayer(*copy, lambda_in, l_out);
            model.sourceLayerOf.push_back(i);
            model.lambdas.push_back(l_out);
            model.net.addLayer(std::move(copy));
            lambda_in = l_out;
        } else if (isActivation(kind)) {
            model.ifLayerIndices.push_back(model.net.numLayers());
            model.sourceLayerOf.push_back(i);
            model.lambdas.push_back(l_out);
            model.net.addLayer(
                std::make_unique<IfLayer>(1.0f, config.reset));
        } else if (kind == LayerKind::AvgPool) {
            model.sourceLayerOf.push_back(i);
            model.lambdas.push_back(l_out);
            model.net.addLayer(src.clone());
            if (config.ifAfterPool) {
                model.ifLayerIndices.push_back(model.net.numLayers());
                model.sourceLayerOf.push_back(-1);
                model.lambdas.push_back(l_out);
                model.net.addLayer(
                    std::make_unique<IfLayer>(1.0f, config.reset));
            }
        } else if (kind == LayerKind::Flatten) {
            model.sourceLayerOf.push_back(i);
            model.lambdas.push_back(l_out);
            model.net.addLayer(src.clone());
        } else if (kind == LayerKind::MaxPool) {
            NEBULA_FATAL("max pooling is not SNN-convertible; train with "
                         "average pooling (paper Sec. V-A)");
        } else if (kind == LayerKind::BatchNorm) {
            NEBULA_PANIC("batchnorm survived folding");
        } else {
            NEBULA_FATAL("layer kind '", layerKindName(kind),
                         "' unsupported by the converter");
        }
    }
    return model;
}

} // namespace nebula
