/**
 * @file
 * ANN-to-SNN conversion (paper Sec. V-A, following Cao / Diehl /
 * Rueckauer):
 *
 *  - batch-norm layers are folded into the preceding weight layer;
 *  - every ReLU is replaced by an integrate-and-fire layer;
 *  - an extra IF layer is inserted after every average pool so that all
 *    inter-layer traffic stays binary (hardware-mappable);
 *  - weights are data-based normalized: with lambda_l the high
 *    percentile of layer l's ANN activation, each weight layer is
 *    rescaled w <- w * lambda_in / lambda_out, b <- b / lambda_out so
 *    all IF thresholds can be 1.0 and activations correspond to firing
 *    rates in [0, 1].
 *
 * Max pooling is rejected -- networks must be trained with average
 * pooling (the paper's conversion constraint).
 */

#ifndef NEBULA_SNN_CONVERT_HPP
#define NEBULA_SNN_CONVERT_HPP

#include <vector>

#include "nn/network.hpp"
#include "snn/if_layer.hpp"

namespace nebula {

/** Conversion options. */
struct ConversionConfig
{
    /** Activation percentile used for the normalization scales. */
    double percentile = 0.999;

    /**
     * Membrane reset behaviour. Reset-by-subtraction is the default:
     * it preserves the sub-threshold residual so firing rates track the
     * ANN activations exactly, which deep conversions require
     * (Rueckauer et al.). The DW neuron realizes it with a calibrated
     * reverse reset pulse of one threshold-worth of displacement;
     * ResetMode::Zero models the simpler reset-to-edge pulse and is
     * kept for ablation.
     */
    ResetMode reset = ResetMode::Subtract;

    /** Insert an IF layer after each average pool (Sec. V-A item 2). */
    bool ifAfterPool = true;
};

/** A converted spiking network plus its bookkeeping. */
struct SpikingModel
{
    Network net;                     //!< converted layer stack
    std::vector<int> ifLayerIndices; //!< positions of IF layers in net
    std::vector<float> lambdas;      //!< per-net-layer activation scale:
                                     //!< ANN value ~ spike rate * lambda
    std::vector<int> sourceLayerOf;  //!< net idx -> source idx (-1: inserted)

    /** Reset the state of every IF layer (new inference). */
    void resetState();

    /**
     * Deep copy (cloned network + bookkeeping). Worker replicas in the
     * inference runtime each clone the converted model so membrane
     * state stays private to their thread.
     */
    SpikingModel clone() const;

    /** Typed access to IF layer k (by position in ifLayerIndices). */
    IfLayer &ifLayer(int k);
};

/**
 * Convert a trained ANN into a rate-coded spiking network.
 *
 * @param ann         Source network; batch norm is folded in place.
 *                    The source layers are cloned, not moved.
 * @param calibration Calibration batch for the normalization scales.
 */
SpikingModel convertToSnn(Network &ann, const Tensor &calibration,
                          const ConversionConfig &config = {});

} // namespace nebula

#endif // NEBULA_SNN_CONVERT_HPP
