#include "snn/encoder.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace nebula {

PoissonEncoder::PoissonEncoder(double rate_scale, uint64_t seed)
    : rateScale_(std::clamp(rate_scale, 0.0, 1.0)), seed_(seed), rng_(seed)
{
}

Tensor
PoissonEncoder::encode(const Tensor &image)
{
    Tensor spikes(image.shape());
    for (long long i = 0; i < image.size(); ++i) {
        const double p =
            std::clamp(static_cast<double>(image[i]), 0.0, 1.0) * rateScale_;
        spikes[i] = rng_.bernoulli(p) ? 1.0f : 0.0f;
    }
    return spikes;
}

void
PoissonEncoder::reset()
{
    rng_ = Rng(seed_);
}

} // namespace nebula
