#include "snn/encoder.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace nebula {

PoissonEncoder::PoissonEncoder(double rate_scale, uint64_t seed)
    : rateScale_(std::clamp(rate_scale, 0.0, 1.0)), seed_(seed), rng_(seed)
{
}

Tensor
PoissonEncoder::encode(const Tensor &image)
{
    Tensor spikes(image.shape());
    encodeInto(image, spikes);
    return spikes;
}

void
PoissonEncoder::encodeInto(const Tensor &image, Tensor &out)
{
    if (!out.sameShape(image))
        out = Tensor(image.shape());
    const float *in = image.data();
    float *spikes = out.data();
    for (long long i = 0; i < image.size(); ++i) {
        const double p =
            std::clamp(static_cast<double>(in[i]), 0.0, 1.0) * rateScale_;
        spikes[i] = rng_.bernoulli(p) ? 1.0f : 0.0f;
    }
}

void
PoissonEncoder::encodeActive(const Tensor &image, std::vector<int> &active)
{
    active.clear();
    const float *in = image.data();
    for (long long i = 0; i < image.size(); ++i) {
        const double p =
            std::clamp(static_cast<double>(in[i]), 0.0, 1.0) * rateScale_;
        if (rng_.bernoulli(p))
            active.push_back(static_cast<int>(i));
    }
}

void
PoissonEncoder::buildPlan(const Tensor &image, EncodePlan &plan) const
{
    plan.index.clear();
    plan.prob.clear();
    const float *in = image.data();
    for (long long i = 0; i < image.size(); ++i) {
        const double p =
            std::clamp(static_cast<double>(in[i]), 0.0, 1.0) * rateScale_;
        if (p > 0.0) {
            plan.index.push_back(static_cast<int>(i));
            plan.prob.push_back(p);
        }
    }
}

void
PoissonEncoder::encodeActive(const EncodePlan &plan,
                             std::vector<int> &active)
{
    const int *idx = plan.index.data();
    const double *prob = plan.prob.data();
    const size_t n = plan.index.size();
    active.resize(n); // worst case: every plan pixel fires
    int *out = active.data();
    // Mirrors bernoulli(p) exactly: p >= 1 fires without a draw, p in
    // (0, 1) draws one uniform; p <= 0 pixels are absent from the plan
    // and would not have drawn either. The generator runs on a local
    // copy (its state stays in registers across the loop) and the fire
    // decision is a branchless conditional append -- the outcome of a
    // random draw is the one branch no predictor can learn.
    Rng rng = rng_;
    size_t count = 0;
    for (size_t k = 0; k < n; ++k) {
        const double p = prob[k];
        if (p >= 1.0) {
            out[count++] = idx[k];
            continue;
        }
        out[count] = idx[k];
        count += static_cast<size_t>(rng.uniform() < p);
    }
    rng_ = rng;
    active.resize(count);
}

void
PoissonEncoder::reset()
{
    rng_ = Rng(seed_);
}

} // namespace nebula
