/**
 * @file
 * Rate encoding of input images into Poisson spike trains (paper
 * Sec. V-A item 1): each pixel intensity becomes the per-timestep firing
 * probability of the corresponding input line.
 */

#ifndef NEBULA_SNN_ENCODER_HPP
#define NEBULA_SNN_ENCODER_HPP

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace nebula {

/** Bernoulli-per-step (binned Poisson) rate encoder. */
class PoissonEncoder
{
  public:
    /**
     * @param rate_scale Firing probability per step at intensity 1.0
     *                   (clamped to [0, 1]).
     * @param seed       Spike-train seed.
     */
    explicit PoissonEncoder(double rate_scale = 1.0, uint64_t seed = 11);

    /**
     * One timestep of spikes for the given intensity image in [0, 1].
     * Output has the same shape with entries in {0, 1}.
     */
    Tensor encode(const Tensor &image);

    /** Restart the spike-train stream (same seed -> same train). */
    void reset();

    double rateScale() const { return rateScale_; }

  private:
    double rateScale_;
    uint64_t seed_;
    Rng rng_;
};

} // namespace nebula

#endif // NEBULA_SNN_ENCODER_HPP
