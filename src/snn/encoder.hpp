/**
 * @file
 * Rate encoding of input images into Poisson spike trains (paper
 * Sec. V-A item 1): each pixel intensity becomes the per-timestep firing
 * probability of the corresponding input line.
 */

#ifndef NEBULA_SNN_ENCODER_HPP
#define NEBULA_SNN_ENCODER_HPP

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace nebula {

/** Bernoulli-per-step (binned Poisson) rate encoder. */
class PoissonEncoder
{
  public:
    /**
     * @param rate_scale Firing probability per step at intensity 1.0
     *                   (clamped to [0, 1]).
     * @param seed       Spike-train seed.
     */
    explicit PoissonEncoder(double rate_scale = 1.0, uint64_t seed = 11);

    /**
     * One timestep of spikes for the given intensity image in [0, 1].
     * Output has the same shape with entries in {0, 1}.
     */
    Tensor encode(const Tensor &image);

    /**
     * encode() into a caller-owned buffer (reshaped to match if needed)
     * so per-timestep loops reuse one allocation. Consumes the same
     * random draws as encode(): interleaving the two forms on one
     * encoder produces the identical spike train.
     */
    void encodeInto(const Tensor &image, Tensor &out);

    /**
     * One timestep as an ascending active-pixel index list (the form
     * sparse crossbar drivers consume) without materializing the spike
     * tensor. Draw-for-draw identical to encode(): element i spikes in
     * encodeActive() exactly when it spikes in encode() at the same
     * stream position.
     */
    void encodeActive(const Tensor &image, std::vector<int> &active);

    /**
     * Precomputed encoding work for one image: the ascending indices of
     * its pixels with nonzero firing probability, and that probability.
     * Serving loops that present the same image for many timesteps
     * build this once instead of re-clamping every pixel per step.
     */
    struct EncodePlan
    {
        std::vector<int> index;   //!< nonzero-probability pixels, ascending
        std::vector<double> prob; //!< firing probability of each
    };

    /** Fill @p plan for @p image (pure function of image and rateScale). */
    void buildPlan(const Tensor &image, EncodePlan &plan) const;

    /**
     * encodeActive() driven by a precomputed plan. Draw-for-draw
     * identical to encode(image): zero-probability pixels consume no
     * random draws in either form, so skipping them does not shift the
     * stream, and the drawing pixels are visited in the same order.
     */
    void encodeActive(const EncodePlan &plan, std::vector<int> &active);

    /** Restart the spike-train stream (same seed -> same train). */
    void reset();

    double rateScale() const { return rateScale_; }

  private:
    double rateScale_;
    uint64_t seed_;
    Rng rng_;
};

} // namespace nebula

#endif // NEBULA_SNN_ENCODER_HPP
