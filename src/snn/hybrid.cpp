#include "snn/hybrid.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "snn/encoder.hpp"

namespace nebula {

HybridNetwork::HybridNetwork(Network &ann, const Tensor &calibration,
                             int ann_layers, const ConversionConfig &config,
                             uint64_t seed)
    : seedStream_(seed)
{
    SpikingModel full = convertToSnn(ann, calibration, config);

    const auto weight_indices = full.net.weightLayerIndices();
    const int total_weights = static_cast<int>(weight_indices.size());
    NEBULA_ASSERT(ann_layers >= 1 && ann_layers < total_weights,
                  "hybrid split must leave 1..", total_weights - 1,
                  " ANN layers, got ", ann_layers);
    annLayers_ = ann_layers;
    spikingLayers_ = total_weights - ann_layers;

    // First weight layer that runs in the ANN domain (converted coords).
    const int boundary_weight =
        weight_indices[static_cast<size_t>(total_weights - ann_layers)];

    // The spiking prefix ends at the last IF before that weight layer.
    int q = -1;
    for (int idx : full.ifLayerIndices)
        if (idx < boundary_weight)
            q = std::max(q, idx);
    NEBULA_ASSERT(q >= 0, "no IF layer before the hybrid boundary");

    // Clone the prefix out of the converted model.
    prefix_.net.setName(ann.name() + "-hybrid-prefix");
    for (int i = 0; i <= q; ++i) {
        if (full.net.layer(i).kind() == LayerKind::If)
            prefix_.ifLayerIndices.push_back(prefix_.net.numLayers());
        prefix_.sourceLayerOf.push_back(
            full.sourceLayerOf[static_cast<size_t>(i)]);
        prefix_.lambdas.push_back(full.lambdas[static_cast<size_t>(i)]);
        prefix_.net.addLayer(full.net.layer(i).clone());
    }
    boundaryLambda_ = full.lambdas[static_cast<size_t>(q)];

    // Suffix: the original (un-normalized) source layers after the
    // boundary activation.
    int boundary_source = -1;
    for (int i = 0; i <= q; ++i)
        boundary_source =
            std::max(boundary_source,
                     full.sourceLayerOf[static_cast<size_t>(i)]);
    NEBULA_ASSERT(boundary_source >= 0, "could not locate boundary source");

    suffix_.setName(ann.name() + "-hybrid-suffix");
    for (int j = boundary_source + 1; j < ann.numLayers(); ++j)
        suffix_.addLayer(ann.layer(j).clone());
    NEBULA_ASSERT(!suffix_.weightLayerIndices().empty(),
                  "hybrid suffix has no weight layers");
}

HybridRunResult
HybridNetwork::run(const Tensor &image, int timesteps)
{
    return run(image, timesteps, seedStream_.next());
}

HybridRunResult
HybridNetwork::run(const Tensor &image, int timesteps,
                   uint64_t encoder_seed)
{
    NEBULA_ASSERT(timesteps > 0, "need at least one timestep");
    prefix_.resetState();
    PoissonEncoder encoder(inputRate_, encoder_seed);

    std::vector<int> batched;
    batched.push_back(1);
    for (int d = 0; d < image.rank(); ++d)
        batched.push_back(image.dim(d));

    for (int t = 0; t < timesteps; ++t) {
        Tensor spikes = encoder.encode(image);
        Tensor x = spikes.reshaped(batched);
        prefix_.net.forward(x, false);
    }

    // Accumulator Unit: spike counts -> continuous activations.
    const int last_if =
        static_cast<int>(prefix_.ifLayerIndices.size()) - 1;
    IfLayer &boundary = prefix_.ifLayer(last_if);
    boundaryNeurons_ = boundary.neuronCount();

    Tensor accumulated(boundary.membrane().shape());
    const auto &counts = boundary.spikeCounts();
    const float scale = boundaryLambda_ / static_cast<float>(timesteps);
    for (long long i = 0; i < accumulated.size(); ++i)
        accumulated[i] =
            static_cast<float>(counts[static_cast<size_t>(i)]) * scale;

    HybridRunResult result;
    result.timesteps = timesteps;
    result.logits = suffix_.forward(accumulated, false);
    result.auAccumulations = boundary.spikeCount();
    for (size_t k = 0; k < prefix_.ifLayerIndices.size(); ++k) {
        IfLayer &layer = prefix_.ifLayer(static_cast<int>(k));
        result.prefixSpikes += layer.spikeCount();
        const double neurons = std::max<long long>(layer.neuronCount(), 1);
        result.ifActivity.push_back(layer.spikeCount() /
                                    (neurons * timesteps));
    }
    return result;
}

double
HybridNetwork::evaluateAccuracy(const Dataset &data, int max_samples,
                                int timesteps)
{
    const int total =
        max_samples > 0 ? std::min(max_samples, data.size()) : data.size();
    int correct = 0;
    for (int i = 0; i < total; ++i) {
        const HybridRunResult result = run(data.image(i), timesteps);
        correct += (result.predictedClass() == data.label(i));
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

} // namespace nebula
