/**
 * @file
 * Hybrid SNN-ANN networks (paper Sec. V-B, Fig. 11): the front of the
 * network runs in the spiking domain for T timesteps; an Accumulator
 * Unit gathers the boundary layer's spikes over the time window, scales
 * them back to the continuous domain (rate * lambda), and the remaining
 * layers execute once as a conventional ANN. This recovers accuracy at
 * far fewer timesteps than a pure SNN while keeping most of the compute
 * in the low-power spiking cores.
 */

#ifndef NEBULA_SNN_HYBRID_HPP
#define NEBULA_SNN_HYBRID_HPP

#include "nn/datasets.hpp"
#include "snn/convert.hpp"
#include "snn/snn_sim.hpp"

namespace nebula {

/** Result of one hybrid inference. */
struct HybridRunResult
{
    Tensor logits;               //!< (1, classes), from the ANN suffix
    int timesteps = 0;
    long long prefixSpikes = 0;  //!< spikes in the spiking prefix
    long long auAccumulations = 0; //!< AU add operations performed
    std::vector<double> ifActivity; //!< per prefix-IF activity

    int predictedClass() const { return logits.argmaxRow(0); }
};

/** A network split into a spiking prefix and an ANN suffix. */
class HybridNetwork
{
  public:
    /**
     * @param ann         Trained source network (BN folded in place).
     * @param calibration Calibration batch for normalization scales.
     * @param ann_layers  Number of *trailing weight layers* to keep in
     *                    the ANN domain (the paper's Hyb-1/2/3).
     * @param config      Conversion options for the prefix.
     * @param seed        Encoder seed.
     */
    HybridNetwork(Network &ann, const Tensor &calibration, int ann_layers,
                  const ConversionConfig &config = {}, uint64_t seed = 33);

    /** Run one (C, H, W) image: T spiking steps, then one ANN pass. */
    HybridRunResult run(const Tensor &image, int timesteps);

    /**
     * Same, with an explicit encoder seed so the result does not
     * depend on how many runs preceded it (used by the concurrent
     * runtime's determinism guarantee).
     */
    HybridRunResult run(const Tensor &image, int timesteps,
                        uint64_t encoder_seed);

    /** Accuracy over the first @p max_samples samples. */
    double evaluateAccuracy(const Dataset &data, int max_samples,
                            int timesteps);

    /** Number of weight layers in the ANN suffix. */
    int annLayers() const { return annLayers_; }

    /** Number of weight layers in the spiking prefix. */
    int spikingLayers() const { return spikingLayers_; }

    /** Number of neurons at the SNN->ANN boundary (AU width). */
    long long boundaryNeurons() const { return boundaryNeurons_; }

    /** The spiking prefix model (for energy accounting). */
    SpikingModel &prefix() { return prefix_; }

    /** The ANN suffix (for energy accounting). */
    Network &suffix() { return suffix_; }

  private:
    SpikingModel prefix_;
    Network suffix_;       //!< unnormalized source clones after the boundary
    float boundaryLambda_ = 1.0f;
    int annLayers_ = 0;
    int spikingLayers_ = 0;
    long long boundaryNeurons_ = 0;
    double inputRate_ = 1.0;
    Rng seedStream_;
};

} // namespace nebula

#endif // NEBULA_SNN_HYBRID_HPP
