#include "snn/if_layer.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace nebula {

IfLayer::IfLayer(float threshold, ResetMode reset, IfOptions options)
    : threshold_(threshold), resetMode_(reset), options_(options)
{
    NEBULA_ASSERT(threshold_ > 0.0f, "IF threshold must be positive");
    NEBULA_ASSERT(options_.leak >= 0.0f && options_.leak < 1.0f,
                  "leak must be in [0, 1)");
    NEBULA_ASSERT(options_.refractory >= 0,
                  "refractory period must be non-negative");
}

std::string
IfLayer::name() const
{
    std::ostringstream oss;
    oss << "if(vth=" << threshold_
        << (resetMode_ == ResetMode::Zero ? ",reset0" : ",soft");
    if (options_.leak > 0.0f)
        oss << ",leak=" << options_.leak;
    if (options_.refractory > 0)
        oss << ",refr=" << options_.refractory;
    oss << ")";
    return oss.str();
}

LayerPtr
IfLayer::clone() const
{
    // Clones start with fresh state.
    return std::make_unique<IfLayer>(threshold_, resetMode_, options_);
}

Tensor
IfLayer::forward(const Tensor &input, bool)
{
    if (!membrane_.sameShape(input)) {
        membrane_ = Tensor(input.shape());
        spikeCounts_.assign(static_cast<size_t>(input.size()), 0);
        refractoryLeft_.assign(static_cast<size_t>(input.size()), 0);
        spikes_ = 0;
    }

    const float keep = 1.0f - options_.leak;
    Tensor spikes(input.shape());
    for (long long i = 0; i < input.size(); ++i) {
        const size_t k = static_cast<size_t>(i);
        if (options_.refractory > 0 && refractoryLeft_[k] > 0) {
            --refractoryLeft_[k];
            spikes[i] = 0.0f;
            continue;
        }
        if (options_.leak > 0.0f)
            membrane_[i] *= keep;
        membrane_[i] += input[i];
        if (membrane_[i] >= threshold_) {
            spikes[i] = 1.0f;
            membrane_[i] = resetMode_ == ResetMode::Zero
                               ? 0.0f
                               : membrane_[i] - threshold_;
            if (options_.refractory > 0)
                refractoryLeft_[k] = options_.refractory;
            ++spikes_;
            ++spikeCounts_[k];
        } else {
            spikes[i] = 0.0f;
        }
    }
    return spikes;
}

void
IfLayer::resetState()
{
    membrane_ = Tensor();
    spikeCounts_.clear();
    refractoryLeft_.clear();
    spikes_ = 0;
}

} // namespace nebula
