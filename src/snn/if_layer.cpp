#include "snn/if_layer.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace nebula {

IfLayer::IfLayer(float threshold, ResetMode reset, IfOptions options)
    : threshold_(threshold), resetMode_(reset), options_(options)
{
    NEBULA_ASSERT(threshold_ > 0.0f, "IF threshold must be positive");
    NEBULA_ASSERT(options_.leak >= 0.0f && options_.leak < 1.0f,
                  "leak must be in [0, 1)");
    NEBULA_ASSERT(options_.refractory >= 0,
                  "refractory period must be non-negative");
}

std::string
IfLayer::name() const
{
    std::ostringstream oss;
    oss << "if(vth=" << threshold_
        << (resetMode_ == ResetMode::Zero ? ",reset0" : ",soft");
    if (options_.leak > 0.0f)
        oss << ",leak=" << options_.leak;
    if (options_.refractory > 0)
        oss << ",refr=" << options_.refractory;
    oss << ")";
    return oss.str();
}

LayerPtr
IfLayer::clone() const
{
    // Clones start with fresh state.
    return std::make_unique<IfLayer>(threshold_, resetMode_, options_);
}

Tensor
IfLayer::forward(const Tensor &input, bool)
{
    ensureState(input.shape());
    Tensor spikes(input.shape());
    step(input.data(), spikes.data(), input.size());
    return spikes;
}

void
IfLayer::ensureState(const std::vector<int> &shape)
{
    if (membrane_.shape() == shape)
        return;
    membrane_ = Tensor(shape);
    spikeCounts_.assign(static_cast<size_t>(membrane_.size()), 0);
    refractoryLeft_.assign(static_cast<size_t>(membrane_.size()), 0);
    spikes_ = 0;
}

void
IfLayer::step(const float *in, float *out, long long n)
{
    NEBULA_ASSERT(membrane_.size() == n,
                  "IF state not sized for this input");
    const float keep = 1.0f - options_.leak;
    float *mem = membrane_.data();
    for (long long i = 0; i < n; ++i) {
        const size_t k = static_cast<size_t>(i);
        if (options_.refractory > 0 && refractoryLeft_[k] > 0) {
            --refractoryLeft_[k];
            out[i] = 0.0f;
            continue;
        }
        if (options_.leak > 0.0f)
            mem[i] *= keep;
        mem[i] += in[i];
        if (mem[i] >= threshold_) {
            out[i] = 1.0f;
            mem[i] = resetMode_ == ResetMode::Zero ? 0.0f
                                                   : mem[i] - threshold_;
            if (options_.refractory > 0)
                refractoryLeft_[k] = options_.refractory;
            ++spikes_;
            ++spikeCounts_[k];
        } else {
            out[i] = 0.0f;
        }
    }
}

void
IfLayer::stepPlain(const float *in, float *out, long long n)
{
    NEBULA_ASSERT(membrane_.size() == n,
                  "IF state not sized for this input");
    NEBULA_ASSERT(options_.leak == 0.0f && options_.refractory == 0,
                  "stepPlain requires the plain leak/refractory-free IF");
    const float vth = threshold_;
    const bool reset_zero = resetMode_ == ResetMode::Zero;
    float *mem = membrane_.data();
    long long fired = 0;
    for (long long i = 0; i < n; ++i) {
        const float m = mem[i] + in[i];
        if (m >= vth) {
            out[i] = 1.0f;
            mem[i] = reset_zero ? 0.0f : m - vth;
            ++fired;
            ++spikeCounts_[static_cast<size_t>(i)];
        } else {
            out[i] = 0.0f;
            mem[i] = m;
        }
    }
    spikes_ += fired;
}

int
IfLayer::winnerIndex() const
{
    const long long n = membrane_.size();
    if (n == 0)
        return -1;
    const float *mem = membrane_.data();
    int winner = 0;
    for (long long i = 1; i < n; ++i)
        if (mem[i] > mem[winner])
            winner = static_cast<int>(i);
    return winner;
}

void
IfLayer::resetState()
{
    membrane_ = Tensor();
    spikeCounts_.clear();
    refractoryLeft_.clear();
    spikes_ = 0;
}

} // namespace nebula
