/**
 * @file
 * Linear integrate-and-fire neuron layer (paper Eq. 2). This is the
 * algorithmic gold model the DW-MTJ spiking neuron device implements:
 * the membrane potential integrates the weighted input each timestep and
 * the neuron emits a binary spike (and resets) on crossing the
 * threshold. No leak, no refractory period (Sec. II-A).
 */

#ifndef NEBULA_SNN_IF_LAYER_HPP
#define NEBULA_SNN_IF_LAYER_HPP

#include "nn/layer.hpp"

namespace nebula {

/** How the membrane resets after a spike. */
enum class ResetMode {
    Zero,      //!< reset to v_reset = 0 (what the DW reset pulse does)
    Subtract,  //!< subtract the threshold (soft reset)
};

/**
 * Optional biofidelity extensions (paper Sec. II-A: "our proposal can
 * be easily extended to incorporate such additional characteristics").
 * Defaults are the paper's plain leak-free, refractory-free IF neuron.
 */
struct IfOptions
{
    /**
     * Membrane leak per timestep: u <- u * (1 - leak) before
     * integration. 0 disables (the paper's default model); on the
     * device this corresponds to a weak restoring drift of the wall.
     */
    float leak = 0.0f;

    /**
     * Refractory period in timesteps: after firing, the neuron ignores
     * input for this many steps (the reset pulse keeps the wall pinned).
     */
    int refractory = 0;
};

/**
 * Stateful IF layer. forward() advances ONE timestep: it adds the input
 * to the membrane and returns the binary spike map. State persists
 * across calls until resetState().
 */
class IfLayer : public Layer
{
  public:
    explicit IfLayer(float threshold = 1.0f,
                     ResetMode reset = ResetMode::Zero,
                     IfOptions options = {});

    Tensor forward(const Tensor &input, bool train = false) override;
    LayerKind kind() const override { return LayerKind::If; }
    std::string name() const override;
    LayerPtr clone() const override;

    /** Clear membrane state and spike statistics for a new inference. */
    void resetState();

    /**
     * Size the membrane/refractory state for inputs of @p shape (the
     * same lazy initialization forward() performs). A no-op when the
     * state already matches, so callers may invoke it once per run.
     */
    void ensureState(const std::vector<int> &shape);

    /**
     * Advance ONE timestep on raw buffers: integrate @p in, write the
     * binary spike map to @p out. Exactly forward()'s update -- it IS
     * forward()'s loop -- but without allocating the result tensor;
     * ensureState() must have sized the state to @p n neurons first.
     * The chip's fast SNN path drives this form.
     */
    void step(const float *in, float *out, long long n);

    /**
     * step() specialized for the paper's plain IF neuron (no leak, no
     * refractory period -- asserts both are off): the same integrate /
     * compare / reset arithmetic with the per-element option branches
     * hoisted out of the loop. The chip's fast SNN plan calls this when
     * eligible; the differential tests pin it to step().
     */
    void stepPlain(const float *in, float *out, long long n);

    /** Total spikes emitted since the last resetState(). */
    long long spikeCount() const { return spikes_; }

    /** Number of neurons (known after the first forward). */
    long long neuronCount() const { return membrane_.size(); }

    /** Membrane tensor (empty before the first forward). */
    const Tensor &membrane() const { return membrane_; }

    /**
     * Raw membrane potentials, neuronCount() floats (null before the
     * first forward/ensureState). Lets WTA readout scan potentials
     * in place instead of copying the state tensor every step.
     */
    const float *membraneData() const { return membrane_.size() ? membrane_.data() : nullptr; }

    /**
     * Index of the neuron with the highest membrane potential (ties
     * break to the lowest index), or -1 before any state exists. The
     * lateral-inhibition winner-take-all readout for on-device
     * competitive learning.
     */
    int winnerIndex() const;

    /** Spike count per neuron since the last resetState(). */
    const std::vector<int> &spikeCounts() const { return spikeCounts_; }

    float threshold() const { return threshold_; }
    void setThreshold(float threshold) { threshold_ = threshold; }
    ResetMode resetMode() const { return resetMode_; }
    const IfOptions &options() const { return options_; }

  private:
    float threshold_;
    ResetMode resetMode_;
    IfOptions options_;
    Tensor membrane_;
    std::vector<int> spikeCounts_;
    std::vector<int> refractoryLeft_;
    long long spikes_ = 0;
};

} // namespace nebula

#endif // NEBULA_SNN_IF_LAYER_HPP
