#include "snn/snn_sim.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace nebula {

SnnSimulator::SnnSimulator(SpikingModel &model, double input_rate,
                           uint64_t seed)
    : model_(model), inputRate_(input_rate), seedStream_(seed)
{
}

SnnRunResult
SnnSimulator::run(const Tensor &image, int timesteps)
{
    return run(image, timesteps, seedStream_.next());
}

SnnRunResult
SnnSimulator::run(const Tensor &image, int timesteps,
                  uint64_t encoder_seed)
{
    NEBULA_ASSERT(timesteps > 0, "need at least one timestep");
    NEBULA_ASSERT(image.rank() == 3 || image.rank() == 2,
                  "run expects a single (C,H,W) or (F) image");

    model_.resetState();
    PoissonEncoder encoder(inputRate_, encoder_seed);

    // Batch-of-one input shape.
    std::vector<int> batched;
    batched.push_back(1);
    for (int d = 0; d < image.rank(); ++d)
        batched.push_back(image.dim(d));

    SnnRunResult result;
    result.timesteps = timesteps;
    long long input_spikes = 0;

    for (int t = 0; t < timesteps; ++t) {
        Tensor spikes = encoder.encode(image);
        input_spikes += static_cast<long long>(spikes.sum());
        Tensor x = spikes.reshaped(batched);
        x = model_.net.forward(x, false);
        if (t == 0)
            result.logits = x;
        else
            result.logits.add(x);
    }
    result.inputRate =
        static_cast<double>(input_spikes) / (image.size() * timesteps);

    for (size_t k = 0; k < model_.ifLayerIndices.size(); ++k) {
        IfLayer &layer = model_.ifLayer(static_cast<int>(k));
        result.ifSpikes.push_back(layer.spikeCount());
        result.ifNeurons.push_back(layer.neuronCount());
        result.totalSpikes += layer.spikeCount();
        const double neurons =
            std::max<long long>(layer.neuronCount(), 1);
        result.ifActivity.push_back(layer.spikeCount() /
                                    (neurons * timesteps));
    }
    lastTimesteps_ = timesteps;
    return result;
}

Tensor
SnnSimulator::scaledRateMap(int k) const
{
    NEBULA_ASSERT(lastTimesteps_ > 0, "scaledRateMap before any run");
    NEBULA_ASSERT(k >= 0 &&
                      k < static_cast<int>(model_.ifLayerIndices.size()),
                  "IF index out of range");
    const int net_index = model_.ifLayerIndices[static_cast<size_t>(k)];
    const IfLayer &layer =
        static_cast<const IfLayer &>(model_.net.layer(net_index));
    NEBULA_ASSERT(layer.neuronCount() > 0, "IF layer never ran");

    const float lambda = model_.lambdas[static_cast<size_t>(net_index)];
    Tensor map(layer.membrane().shape());
    const auto &counts = layer.spikeCounts();
    for (long long i = 0; i < map.size(); ++i)
        map[i] = static_cast<float>(counts[static_cast<size_t>(i)]) /
                 lastTimesteps_ * lambda;
    return map;
}

double
SnnSimulator::evaluateAccuracy(const Dataset &data, int max_samples,
                               int timesteps)
{
    const int total =
        max_samples > 0 ? std::min(max_samples, data.size()) : data.size();
    int correct = 0;
    for (int i = 0; i < total; ++i) {
        const SnnRunResult result = run(data.image(i), timesteps);
        correct += (result.predictedClass() == data.label(i));
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

} // namespace nebula
