/**
 * @file
 * Timestep-driven simulator for converted spiking networks: Poisson
 * rate encoding at the input, one network sweep per timestep, output
 * logits accumulated at the final layer. Produces the per-layer spiking
 * activity statistics behind paper Figs. 4 and 10 and the activity
 * factors consumed by the architecture energy model.
 */

#ifndef NEBULA_SNN_SNN_SIM_HPP
#define NEBULA_SNN_SNN_SIM_HPP

#include <vector>

#include "nn/datasets.hpp"
#include "snn/convert.hpp"
#include "snn/encoder.hpp"

namespace nebula {

/** Statistics of one SNN inference. */
struct SnnRunResult
{
    Tensor logits;              //!< accumulated output, shape (1, classes)
    int timesteps = 0;
    long long totalSpikes = 0;  //!< spikes across all IF layers
    double inputRate = 0.0;     //!< measured input spikes/pixel/step

    /** Average spikes per neuron per timestep, one entry per IF layer. */
    std::vector<double> ifActivity;

    /** Spikes and neuron counts per IF layer. */
    std::vector<long long> ifSpikes;
    std::vector<long long> ifNeurons;

    int predictedClass() const { return logits.argmaxRow(0); }
};

/** Simulator for a SpikingModel. */
class SnnSimulator
{
  public:
    /**
     * @param model      Converted spiking network (state is owned there).
     * @param input_rate Peak input firing probability per step.
     * @param seed       Encoder seed (per-image trains fork from it).
     */
    explicit SnnSimulator(SpikingModel &model, double input_rate = 1.0,
                          uint64_t seed = 21);

    /**
     * Run one image for T timesteps, drawing the encoder seed from the
     * simulator's internal stream (results depend on how many runs
     * preceded this one).
     * @param image (C, H, W) intensity tensor in [0, 1].
     */
    SnnRunResult run(const Tensor &image, int timesteps);

    /**
     * Run one image with an explicit encoder seed. Output is a pure
     * function of (model state, image, timesteps, seed) -- the
     * call-order-independent form matching NebulaChip::runSnn, so the
     * functional and chip backends can be driven with identical
     * per-request seeds and compared spike-for-spike.
     */
    SnnRunResult run(const Tensor &image, int timesteps,
                     uint64_t encoder_seed);

    /**
     * ANN-domain rate map of IF layer @p k from the most recent run:
     * spikeCount / T * lambda, shaped like the layer output. Used for
     * the Fig. 10 ANN/SNN feature-map correlation study.
     */
    Tensor scaledRateMap(int k) const;

    /** Classification accuracy over the first @p max_samples of a set. */
    double evaluateAccuracy(const Dataset &data, int max_samples,
                            int timesteps);

    SpikingModel &model() { return model_; }

  private:
    SpikingModel &model_;
    double inputRate_;
    Rng seedStream_;
    int lastTimesteps_ = 0;
};

} // namespace nebula

#endif // NEBULA_SNN_SNN_SIM_HPP
