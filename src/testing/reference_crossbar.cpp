#include "testing/reference_crossbar.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace nebula {
namespace testing {

CrossbarEval
referenceIdeal(const CrossbarArray &xbar, const std::vector<double> &inputs,
               double duration)
{
    NEBULA_ASSERT(inputs.size() == static_cast<size_t>(xbar.rows()),
                  "reference input size mismatch");
    const int rows = xbar.rows();
    const int cols = xbar.cols();
    const double read_v = xbar.params().readVoltage;

    CrossbarEval eval;
    eval.currents.assign(cols, 0.0);

    // Column by column, ascending rows: I_j = sum_i v_i * G_ij.
    for (int j = 0; j < cols; ++j) {
        double current = 0.0;
        for (int i = 0; i < rows; ++i) {
            const double v = std::clamp(inputs[i], 0.0, 1.0) * read_v;
            current += v * xbar.conductanceAt(i, j);
        }
        eval.currents[static_cast<size_t>(j)] = current;
    }

    // Shared reference column subtracted from every column current.
    double ref_current = 0.0;
    for (int i = 0; i < rows; ++i) {
        const double v = std::clamp(inputs[i], 0.0, 1.0) * read_v;
        ref_current += v * xbar.conductanceAt(i, cols);
    }
    for (auto &current : eval.currents)
        current -= ref_current;

    // Energy: V^2 * G over every driven cell (data columns + reference).
    double power = 0.0;
    for (int i = 0; i < rows; ++i) {
        const double v = std::clamp(inputs[i], 0.0, 1.0) * read_v;
        if (v == 0.0)
            continue;
        double row_g = 0.0;
        for (int j = 0; j < cols; ++j)
            row_g += xbar.conductanceAt(i, j);
        row_g += xbar.conductanceAt(i, cols);
        power += v * v * row_g;
    }
    eval.energy = power * duration;

    // An open source-line disconnects the neuron input entirely.
    if (!xbar.faults().empty()) {
        for (int j = 0; j < cols; ++j)
            if (xbar.faults().colOpen(xbar.physicalColumn(j)))
                eval.currents[static_cast<size_t>(j)] = 0.0;
    }
    return eval;
}

CrossbarEval
referenceParasitic(const CrossbarArray &xbar,
                   const std::vector<double> &inputs, double duration,
                   int max_iters, double tolerance)
{
    NEBULA_ASSERT(inputs.size() == static_cast<size_t>(xbar.rows()),
                  "reference input size mismatch");
    const int rows = xbar.rows();
    const int cols = xbar.cols();
    // Physical node columns: data + spares + the reference column.
    const int pcols = cols + xbar.params().spareCols + 1;
    const double read_v = xbar.params().readVoltage;
    const double gw = 1.0 / xbar.params().wireResistance;

    std::vector<double> source(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i)
        source[static_cast<size_t>(i)] =
            std::clamp(inputs[i], 0.0, 1.0) * read_v;

    std::vector<double> vr(static_cast<size_t>(rows) * pcols);
    std::vector<double> vc(static_cast<size_t>(rows) * pcols, 0.0);
    for (int i = 0; i < rows; ++i)
        for (int j = 0; j < pcols; ++j)
            vr[static_cast<size_t>(i) * pcols + j] =
                source[static_cast<size_t>(i)];

    auto g = [&](int i, int j) { return xbar.physicalConductanceAt(i, j); };
    auto at = [&](std::vector<double> &v, int i, int j) -> double & {
        return v[static_cast<size_t>(i) * pcols + j];
    };

    // Gauss-Seidel relaxation of the two node grids: a row node sees
    // the driver (through one wire segment at j == 0), its row-wire
    // neighbors and the cell; a column node sees its column-wire
    // neighbors, the cell, and ground below the last row.
    for (int iter = 0; iter < max_iters; ++iter) {
        double delta = 0.0;
        for (int i = 0; i < rows; ++i) {
            for (int j = 0; j < pcols; ++j) {
                double num = g(i, j) * at(vc, i, j);
                double den = g(i, j);
                num += gw * (j == 0 ? source[static_cast<size_t>(i)]
                                    : at(vr, i, j - 1));
                den += gw;
                if (j + 1 < pcols) {
                    num += gw * at(vr, i, j + 1);
                    den += gw;
                }
                const double nv = num / den;
                delta = std::max(delta, std::abs(nv - at(vr, i, j)));
                at(vr, i, j) = nv;

                double cnum = g(i, j) * at(vr, i, j);
                double cden = g(i, j);
                if (i > 0) {
                    cnum += gw * at(vc, i - 1, j);
                    cden += gw;
                }
                if (i + 1 < rows) {
                    cnum += gw * at(vc, i + 1, j);
                    cden += gw;
                } else {
                    cden += gw; // ground through one wire segment
                }
                const double ncv = cnum / cden;
                delta = std::max(delta, std::abs(ncv - at(vc, i, j)));
                at(vc, i, j) = ncv;
            }
        }
        if (delta < tolerance)
            break;
    }

    CrossbarEval eval;
    eval.currents.assign(cols, 0.0);
    const double ref = at(vc, rows - 1, pcols - 1) * gw;
    for (int j = 0; j < cols; ++j) {
        const int p = xbar.physicalColumn(j);
        if (!xbar.faults().empty() && xbar.faults().colOpen(p)) {
            eval.currents[static_cast<size_t>(j)] = 0.0;
            continue;
        }
        eval.currents[static_cast<size_t>(j)] =
            at(vc, rows - 1, p) * gw - ref;
    }

    double power = 0.0;
    for (int i = 0; i < rows; ++i)
        power += source[static_cast<size_t>(i)] *
                 (source[static_cast<size_t>(i)] - at(vr, i, 0)) * gw;
    eval.energy = power * duration;
    return eval;
}

std::string
CaseConfig::describe() const
{
    std::ostringstream oss;
    oss << "seed=" << seed << " rows=" << rows << " cols=" << cols
        << " spares=" << spareCols << " levels=" << levels
        << " mode=" << (snnMode ? "snn" : "ann")
        << " faults=" << (withFaults ? 1 : 0)
        << " wv=" << (writeVerify ? 1 : 0) << " repair=" << (repair ? 1 : 0)
        << " sigma=" << variationSigma << " sparsity=" << sparsity;
    return oss.str();
}

CaseConfig
randomCase(uint64_t seed)
{
    Rng rng(seed ^ 0xd1f7ca5eull);
    CaseConfig config;
    config.seed = seed;
    config.rows = rng.uniformInt(1, 48);
    config.cols = rng.uniformInt(1, 32);
    config.spareCols = rng.bernoulli(0.5) ? rng.uniformInt(1, 4) : 0;
    config.levels = 1 << rng.uniformInt(1, 4); // 2..16 levels
    config.snnMode = rng.bernoulli(0.5);
    config.withFaults = rng.bernoulli(0.6);
    config.writeVerify = rng.bernoulli(0.5);
    config.repair = config.spareCols > 0 && rng.bernoulli(0.6);
    config.variationSigma = rng.bernoulli(0.3) ? rng.uniform(0.01, 0.15)
                                               : 0.0;
    config.sparsity = rng.uniform(0.0, 0.95);
    return config;
}

BuiltCase
buildCase(const CaseConfig &config, bool fast_eval)
{
    CrossbarParams params;
    params.rows = config.rows;
    params.cols = config.cols;
    params.spareCols = config.spareCols;
    params.levels = config.levels;
    params.readVoltage = config.snnMode ? 0.25 : 0.75;
    params.variationSigma = config.variationSigma;
    params.variationSeed = config.seed ^ 0x5eedull;
    params.fastEval = fast_eval;

    BuiltCase built;
    built.xbar = std::make_unique<CrossbarArray>(params);

    Rng rng(config.seed ^ 0xca5e0b1dull);
    if (config.withFaults) {
        CompositeFaultModel model;
        model.add(std::make_unique<StuckAtFaultModel>(
            rng.uniform(0.0, 0.08), rng.uniform(0.2, 0.8),
            rng.uniform(0.0, 1.0)));
        model.add(std::make_unique<PinningDriftFaultModel>(
            rng.uniform(0.0, 0.08), rng.uniformInt(1, 3)));
        model.add(std::make_unique<RetentionDecayFaultModel>(
            rng.uniform(0.0, 2.0), 1.0, 0.5));
        model.add(std::make_unique<LineOpenFaultModel>(
            rng.uniform(0.0, 0.04), rng.uniform(0.0, 0.04)));
        FaultMap map(config.rows, config.cols + config.spareCols);
        model.sampleInto(map, config.seed ^ 0xfa17ull);
        built.xbar->injectFaults(std::move(map));
    }

    std::vector<float> weights(static_cast<size_t>(config.rows) *
                               config.cols);
    for (auto &w : weights)
        w = static_cast<float>(rng.uniform(-1.2, 1.2));

    ProgrammingConfig pc;
    pc.writeVerify.enabled = config.writeVerify;
    pc.repair.enabled = config.repair;
    built.report = built.xbar->program(weights, pc);

    built.inputs.assign(static_cast<size_t>(config.rows), 0.0);
    for (int i = 0; i < config.rows; ++i) {
        if (rng.bernoulli(config.sparsity))
            continue;
        built.inputs[static_cast<size_t>(i)] =
            config.snnMode ? 1.0 : rng.uniform(0.0, 1.0);
        if (config.snnMode)
            built.active.push_back(i);
    }
    return built;
}

std::string
compareEval(const CrossbarEval &got, const CrossbarEval &want,
            double tolerance)
{
    std::ostringstream oss;
    if (got.currents.size() != want.currents.size()) {
        oss << "column count " << got.currents.size() << " != "
            << want.currents.size();
        return oss.str();
    }
    auto close = [&](double a, double b) {
        if (tolerance <= 0.0)
            return a == b;
        return std::abs(a - b) <=
               tolerance * std::max(1.0, std::abs(b));
    };
    for (size_t j = 0; j < want.currents.size(); ++j) {
        if (!close(got.currents[j], want.currents[j])) {
            oss.precision(17);
            oss << "column " << j << ": got " << got.currents[j]
                << " want " << want.currents[j] << " (diff "
                << got.currents[j] - want.currents[j] << ")";
            return oss.str();
        }
    }
    if (!close(got.energy, want.energy)) {
        oss.precision(17);
        oss << "energy: got " << got.energy << " want " << want.energy;
        return oss.str();
    }
    return {};
}

CaseConfig
shrinkCase(const CaseConfig &failing, const CasePredicate &still_fails,
           std::string *final_detail)
{
    CaseConfig cur = failing;
    if (final_detail)
        *final_detail = still_fails(cur);

    // Candidate simplifications, cheapest explanation first. Each is
    // kept only when the shrunk case still fails.
    auto try_apply = [&](CaseConfig candidate) {
        const std::string detail = still_fails(candidate);
        if (detail.empty())
            return false;
        cur = candidate;
        if (final_detail)
            *final_detail = detail;
        return true;
    };

    bool changed = true;
    for (int round = 0; changed && round < 64; ++round) {
        changed = false;
        if (cur.withFaults) {
            CaseConfig c = cur;
            c.withFaults = false;
            changed |= try_apply(c);
        }
        if (cur.variationSigma > 0.0) {
            CaseConfig c = cur;
            c.variationSigma = 0.0;
            changed |= try_apply(c);
        }
        if (cur.writeVerify) {
            CaseConfig c = cur;
            c.writeVerify = false;
            changed |= try_apply(c);
        }
        if (cur.repair) {
            CaseConfig c = cur;
            c.repair = false;
            changed |= try_apply(c);
        }
        if (cur.spareCols > 0 && !cur.repair) {
            CaseConfig c = cur;
            c.spareCols = 0;
            changed |= try_apply(c);
        }
        if (cur.rows > 1) {
            CaseConfig c = cur;
            c.rows = cur.rows / 2;
            changed |= try_apply(c);
        }
        if (cur.cols > 1) {
            CaseConfig c = cur;
            c.cols = cur.cols / 2;
            changed |= try_apply(c);
        }
        if (cur.sparsity < 0.9) {
            CaseConfig c = cur;
            c.sparsity = 0.5 * (1.0 + cur.sparsity);
            changed |= try_apply(c);
        }
    }
    return cur;
}

} // namespace testing
} // namespace nebula
