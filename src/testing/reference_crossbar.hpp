/**
 * @file
 * Differential-testing harness for the crossbar fast evaluation paths.
 *
 * The production evaluators in src/circuit/crossbar.cpp are optimized
 * (cached remapped conductance views, sparse active-row walks, batched
 * windows, reused solver workspaces). This harness pins them to a
 * deliberately naive, obviously-correct reference:
 *
 *  - referenceIdeal: textbook column-by-column Kirchhoff summation read
 *    through the public logical-view accessors, no caching;
 *  - referenceParasitic: an independent re-derivation of the nodal
 *    Gauss-Seidel relaxation with fresh storage every call.
 *
 * Around the reference sit seeded case generators (random geometry,
 * spare columns, fault maps, mitigations, input sparsity) and a
 * shrinking loop that reduces a failing case to a minimal reproducer
 * before reporting, so a differential failure names the smallest
 * geometry and the exact seed that still breaks.
 */

#ifndef NEBULA_TESTING_REFERENCE_CROSSBAR_HPP
#define NEBULA_TESTING_REFERENCE_CROSSBAR_HPP

#include <functional>
#include <memory>
#include <string>

#include "circuit/crossbar.hpp"

namespace nebula {
namespace testing {

/**
 * Naive ideal evaluation: per logical column, sum v_i * G_ij over rows
 * through conductanceAt(), subtract the reference-column current, zero
 * open columns. Accumulation runs in ascending row order per column, so
 * a correct fast path must match it bit-for-bit.
 */
CrossbarEval referenceIdeal(const CrossbarArray &xbar,
                            const std::vector<double> &inputs,
                            double duration);

/**
 * Naive parasitic evaluation: independent nodal Gauss-Seidel relaxation
 * over the full physical array (data + spares + reference), fresh
 * storage each call. Fast-path results must agree within the solver
 * tolerance.
 */
CrossbarEval referenceParasitic(const CrossbarArray &xbar,
                                const std::vector<double> &inputs,
                                double duration, int max_iters = 400,
                                double tolerance = 1e-9);

/** One randomized differential case, fully derived from `seed`. */
struct CaseConfig
{
    uint64_t seed = 0;
    int rows = 8;
    int cols = 8;
    int spareCols = 0;
    int levels = 16;
    bool snnMode = false;     //!< 0.25 V / binary drivers
    bool withFaults = false;  //!< sample a composite fault map
    bool writeVerify = false;
    bool repair = false;
    double variationSigma = 0.0;
    double sparsity = 0.0;    //!< fraction of zero input rows

    std::string describe() const;
};

/** A generated case: programmed array + matching inputs. */
struct BuiltCase
{
    std::unique_ptr<CrossbarArray> xbar;
    std::vector<double> inputs; //!< one voltage factor per row
    SpikeVector active;         //!< ascending nonzero rows (snnMode)
    ProgramReport report;
};

/** Derive a full random case from one seed. */
CaseConfig randomCase(uint64_t seed);

/**
 * Materialize a case: build the array (optionally fault-injected),
 * program random weights with the configured mitigations, and draw the
 * input vector at the configured sparsity. @p fast_eval selects the
 * production fast paths or the scalar baseline on the built array.
 */
BuiltCase buildCase(const CaseConfig &config, bool fast_eval = true);

/**
 * Compare two evaluations. @p tolerance 0 demands bit-exact equality;
 * otherwise |got - want| <= tolerance * max(1, |want|) per column and
 * for the energy. Returns an empty string on match, else a description
 * of the first mismatch.
 */
std::string compareEval(const CrossbarEval &got, const CrossbarEval &want,
                        double tolerance);

/**
 * Shrink a failing case: repeatedly simplify (drop faults/mitigations/
 * spares, halve geometry, raise sparsity) while @p still_fails keeps
 * returning a non-empty mismatch, then return the minimal failing
 * config and its mismatch text. Used by the differential tests to turn
 * a random failure into a one-line reproducer.
 */
using CasePredicate = std::function<std::string(const CaseConfig &)>;
CaseConfig shrinkCase(const CaseConfig &failing,
                      const CasePredicate &still_fails,
                      std::string *final_detail);

} // namespace testing
} // namespace nebula

#endif // NEBULA_TESTING_REFERENCE_CROSSBAR_HPP
