/**
 * @file
 * Tests for the online ABFT integrity-checking layer: the checksum
 * column every crossbar carries when NebulaConfig::abft is on, the
 * per-request IntegrityReport it rolls up into, and the runtime's
 * hedged re-execution + health-probe escalation on violations.
 *
 *  - Differential chaos sweep (> 500 seeded cases over fault kinds x
 *    rates x ANN/SNN shapes): with ABFT on, no corrupt final answer
 *    (prediction differs from the clean-reference replica) is ever
 *    unflagged -- silent data corruption is zero across the sweep.
 *  - ABFT off/on produce bit-identical logits (the checksum column is
 *    read alongside the data columns, never mixed into them).
 *  - Zero false positives on clean arrays, including under device
 *    variation (the tolerance widens by the 6-sigma variation bound).
 *  - Engine-level hedged re-execution: flagged requests re-run once on
 *    the functional fallback and come back clean and typed, in both
 *    worker and inline modes.
 *  - Health escalation: a violation triggers an immediate canary probe
 *    (no waiting for the probeEvery cadence); probeEvery=1 probes after
 *    every request; an escalated probe landing on an already-demoted
 *    slot is a no-op (no double demotion, no touched promise).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/health.hpp"
#include "runtime/engine.hpp"
#include "runtime/replica.hpp"
#include "snn/convert.hpp"

namespace nebula {
namespace {

constexpr int kClasses = 10;

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    if (a.size() != b.size())
        return false;
    return std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

/** One quantized ANN prototype at a given image size. */
struct AnnShape
{
    std::string name;
    SyntheticDigits data;
    Network net;
    QuantizationResult quant;

    explicit AnnShape(int image, uint64_t seed)
        : name("mlp3-" + std::to_string(image)),
          data(48, image, /*seed=*/9),
          net(buildMlp3(image, 1, kClasses, seed)),
          quant(quantizeNetwork(net, data.firstImages(16)))
    {
    }
};

NebulaConfig
abftOn()
{
    NebulaConfig config;
    config.abft = true;
    return config;
}

InferenceRequest
annRequest(const Tensor &image, uint64_t id)
{
    InferenceRequest request;
    request.id = id;
    request.image = image;
    return request;
}

InferenceRequest
snnRequest(const Tensor &image, uint64_t id, int timesteps)
{
    InferenceRequest request = annRequest(image, id);
    request.timesteps = timesteps;
    request.seed = 1000 + id;
    return request;
}

/** Named fault-model builder for the chaos sweep. */
struct FaultKindSpec
{
    const char *name;
    std::shared_ptr<const FaultModel> (*make)(double rate);
};

const FaultKindSpec kFaultKinds[] = {
    {"stuck_mixed",
     [](double rate) -> std::shared_ptr<const FaultModel> {
         return std::make_shared<StuckAtFaultModel>(rate, 0.5, 0.25);
     }},
    {"stuck_high_hard",
     [](double rate) -> std::shared_ptr<const FaultModel> {
         return std::make_shared<StuckAtFaultModel>(rate, 1.0, 1.0);
     }},
    {"stuck_low",
     [](double rate) -> std::shared_ptr<const FaultModel> {
         return std::make_shared<StuckAtFaultModel>(rate, 0.0, 0.5);
     }},
    {"pinning_drift",
     [](double rate) -> std::shared_ptr<const FaultModel> {
         return std::make_shared<PinningDriftFaultModel>(rate, 2);
     }},
    {"retention_decay",
     [](double rate) -> std::shared_ptr<const FaultModel> {
         return std::make_shared<RetentionDecayFaultModel>(
             /*elapsed=*/40.0 * rate, /*tau=*/1.0, /*sigma=*/0.3);
     }},
    {"line_open",
     [](double rate) -> std::shared_ptr<const FaultModel> {
         return std::make_shared<LineOpenFaultModel>(rate, rate);
     }},
};

// ---------------------------------------------------------------------------
// Differential chaos sweep: zero silent corruption with ABFT on
// ---------------------------------------------------------------------------

TEST(AbftChaos, NoUndetectedCorruptionAcrossFaultSweep)
{
    const std::vector<double> rates{0.005, 0.02, 0.05};
    const std::vector<uint64_t> seeds{1, 2, 3, 4, 5};
    const int images_per_trial = 3;
    int cases = 0;

    for (int image_size : {10, 8}) {
        AnnShape shape(image_size, /*seed=*/3 + image_size);

        // Clean reference: the answer every uncorrupted replica gives.
        auto reference =
            makeAnnReplicaFactory(shape.net, shape.quant)(0);
        std::vector<int> expected;
        for (int i = 0; i < images_per_trial; ++i)
            expected.push_back(
                reference->run(annRequest(shape.data.image(i), 1 + i))
                    .predictedClass);

        for (const FaultKindSpec &kind : kFaultKinds) {
            for (double rate : rates) {
                for (uint64_t seed : seeds) {
                    ReliabilityConfig rel;
                    rel.faults = kind.make(rate);
                    rel.faultSeed = seed;
                    auto replica = makeAnnReplicaFactory(
                        shape.net, shape.quant, abftOn(),
                        /*variation_sigma=*/0.0, /*chip_seed=*/5, rel)(0);
                    for (int i = 0; i < images_per_trial; ++i) {
                        const InferenceResult result = replica->run(
                            annRequest(shape.data.image(i), 1 + i));
                        ++cases;
                        ASSERT_TRUE(result.ok());
                        EXPECT_GT(result.integrity.checks, 0);
                        const bool corrupt =
                            result.predictedClass !=
                            expected[static_cast<size_t>(i)];
                        EXPECT_FALSE(corrupt && result.integrity.clean())
                            << "silent corruption: " << shape.name << " "
                            << kind.name << " rate " << rate << " seed "
                            << seed << " image " << i;
                    }
                }
            }
        }
    }

    // SNN leg: a converted spiking model through the same sweep (fewer
    // cells, so fewer combos keep the suite fast).
    {
        AnnShape shape(8, /*seed=*/21);
        Network float_net = buildMlp3(8, 1, kClasses, /*seed=*/21);
        const SpikingModel snn =
            convertToSnn(float_net, shape.data.firstImages(16));
        const int timesteps = 16;

        auto reference = makeSnnReplicaFactory(snn)(0);
        std::vector<int> expected;
        for (int i = 0; i < 2; ++i)
            expected.push_back(
                reference
                    ->run(snnRequest(shape.data.image(i), 1 + i, timesteps))
                    .predictedClass);

        for (const char *kind_name :
             {"stuck_mixed", "line_open", "retention_decay"}) {
            const FaultKindSpec *kind = nullptr;
            for (const FaultKindSpec &candidate : kFaultKinds)
                if (std::string(candidate.name) == kind_name)
                    kind = &candidate;
            ASSERT_NE(kind, nullptr);
            for (double rate : {0.02, 0.05}) {
                for (uint64_t seed : {7ull, 8ull}) {
                    ReliabilityConfig rel;
                    rel.faults = kind->make(rate);
                    rel.faultSeed = seed;
                    auto replica = makeSnnReplicaFactory(
                        snn, abftOn(), /*variation_sigma=*/0.0,
                        /*chip_seed=*/5, rel)(0);
                    for (int i = 0; i < 2; ++i) {
                        const InferenceResult result = replica->run(
                            snnRequest(shape.data.image(i), 1 + i,
                                       timesteps));
                        ++cases;
                        ASSERT_TRUE(result.ok());
                        EXPECT_GT(result.integrity.checks, 0);
                        const bool corrupt =
                            result.predictedClass !=
                            expected[static_cast<size_t>(i)];
                        EXPECT_FALSE(corrupt && result.integrity.clean())
                            << "silent SNN corruption: " << kind->name
                            << " rate " << rate << " seed " << seed
                            << " image " << i;
                    }
                }
            }
        }
    }

    EXPECT_GE(cases, 500) << "chaos sweep shrank below its design size";
}

// ---------------------------------------------------------------------------
// Checksum reads never perturb the data path
// ---------------------------------------------------------------------------

TEST(AbftEquivalence, OffAndOnLogitsBitIdenticalCleanAndFaulty)
{
    AnnShape shape(10, /*seed=*/13);

    ReliabilityConfig faulty;
    faulty.faults = std::make_shared<StuckAtFaultModel>(0.02);
    faulty.faultSeed = 3;

    for (const ReliabilityConfig &rel :
         {ReliabilityConfig{}, faulty}) {
        auto off = makeAnnReplicaFactory(shape.net, shape.quant, {},
                                         /*variation_sigma=*/0.0,
                                         /*chip_seed=*/5, rel)(0);
        auto on = makeAnnReplicaFactory(shape.net, shape.quant, abftOn(),
                                        /*variation_sigma=*/0.0,
                                        /*chip_seed=*/5, rel)(0);
        for (int i = 0; i < 8; ++i) {
            const InferenceResult off_result =
                off->run(annRequest(shape.data.image(i), 1 + i));
            const InferenceResult on_result =
                on->run(annRequest(shape.data.image(i), 1 + i));
            EXPECT_TRUE(
                bitIdentical(off_result.logits, on_result.logits))
                << "checksum column leaked into data logits, image " << i;
            // The ABFT-off replica must not even run comparisons.
            EXPECT_EQ(off_result.integrity.checks, 0);
            EXPECT_FALSE(off_result.integrity.checked());
        }
    }
}

TEST(AbftEquivalence, SnnOffAndOnBitIdentical)
{
    SyntheticDigits data(16, 8, /*seed=*/9);
    Network float_net = buildMlp3(8, 1, kClasses, /*seed=*/21);
    const SpikingModel snn = convertToSnn(float_net, data.firstImages(16));

    auto off = makeSnnReplicaFactory(snn)(0);
    auto on = makeSnnReplicaFactory(snn, abftOn())(0);
    for (int i = 0; i < 4; ++i) {
        const InferenceResult off_result =
            off->run(snnRequest(data.image(i), 1 + i, 12));
        const InferenceResult on_result =
            on->run(snnRequest(data.image(i), 1 + i, 12));
        EXPECT_TRUE(bitIdentical(off_result.logits, on_result.logits));
        EXPECT_EQ(off_result.integrity.checks, 0);
        EXPECT_GT(on_result.integrity.checks, 0);
    }
}

// ---------------------------------------------------------------------------
// False-positive budget: zero on clean arrays
// ---------------------------------------------------------------------------

TEST(AbftFalsePositives, ZeroOnCleanArraysIncludingVariation)
{
    AnnShape shape(10, /*seed=*/13);

    for (double sigma : {0.0, 0.08}) {
        auto replica = makeAnnReplicaFactory(shape.net, shape.quant,
                                             abftOn(), sigma)(0);
        long long checks = 0;
        for (int i = 0; i < 24; ++i) {
            const InferenceResult result =
                replica->run(annRequest(shape.data.image(i), 1 + i));
            ASSERT_TRUE(result.ok());
            EXPECT_TRUE(result.integrity.clean())
                << "false positive at sigma " << sigma << ", image " << i;
            checks += result.integrity.checks;
        }
        EXPECT_GT(checks, 0) << "no comparisons ran at sigma " << sigma;
    }
}

// ---------------------------------------------------------------------------
// Engine-level hedged re-execution
// ---------------------------------------------------------------------------

/**
 * Run the re-execution scenario at a given worker count: a stuck-at
 * chip pool whose every corrupt answer must be replaced by a clean
 * functional one before the future resolves.
 */
void
reExecutionDeliversCleanAnswers(int num_workers)
{
    AnnShape shape(10, /*seed=*/13);

    ReliabilityConfig rel;
    rel.faults = std::make_shared<StuckAtFaultModel>(0.03);
    rel.faultSeed = 11;

    // What the functional fallback answers (the re-executed truth) and
    // what a clean chip answers (the no-corruption reference).
    auto functional = makeFunctionalAnnReplicaFactory(shape.net)(0);
    auto clean_chip = makeAnnReplicaFactory(shape.net, shape.quant)(0);
    std::vector<int> functional_expected, chip_expected;
    for (int i = 0; i < 16; ++i) {
        functional_expected.push_back(
            functional->run(annRequest(shape.data.image(i), 1 + i))
                .predictedClass);
        chip_expected.push_back(
            clean_chip->run(annRequest(shape.data.image(i), 1 + i))
                .predictedClass);
    }

    EngineConfig cfg;
    cfg.numWorkers = num_workers;
    cfg.abft.reExecute = true;
    cfg.abft.fallback = makeFunctionalAnnReplicaFactory(shape.net);
    InferenceEngine engine(
        cfg, makeAnnReplicaFactory(shape.net, shape.quant, abftOn(),
                                   /*variation_sigma=*/0.0,
                                   /*chip_seed=*/5, rel));

    int re_executed = 0;
    for (int i = 0; i < 16; ++i) {
        const InferenceResult result =
            engine.submit(shape.data.image(i)).get();
        ASSERT_TRUE(result.ok());
        if (result.integrity.reExecuted) {
            ++re_executed;
            EXPECT_EQ(result.predictedClass,
                      functional_expected[static_cast<size_t>(i)])
                << "re-executed answer is not the fallback's, image " << i;
        } else {
            // Not re-executed means not flagged -- which must mean not
            // corrupt either (the chaos sweep pins this at scale).
            EXPECT_TRUE(result.integrity.clean());
            EXPECT_EQ(result.predictedClass,
                      chip_expected[static_cast<size_t>(i)])
                << "unflagged corrupt answer escaped, image " << i;
        }
    }
    EXPECT_GT(re_executed, 0)
        << "fault rate produced no violations; scenario is vacuous";

    StatGroup stats = engine.runtimeStats();
    EXPECT_GE(stats.scalarAt("abft.violations").sum(), 1.0);
    EXPECT_GE(stats.scalarAt("abft.reexecutions").sum(), 1.0);
    engine.shutdown();
}

TEST(AbftReExecution, WorkerModeDeliversCleanTypedAnswers)
{
    reExecutionDeliversCleanAnswers(/*num_workers=*/1);
}

TEST(AbftReExecution, InlineModeDeliversCleanTypedAnswers)
{
    reExecutionDeliversCleanAnswers(/*num_workers=*/0);
}

TEST(AbftReExecution, WithoutFallbackResultStaysFlagged)
{
    AnnShape shape(10, /*seed=*/13);

    ReliabilityConfig rel;
    rel.faults = std::make_shared<StuckAtFaultModel>(0.03);
    rel.faultSeed = 11;

    EngineConfig cfg;
    cfg.numWorkers = 1;
    // reExecute defaults true, but no fallback factory is configured:
    // the engine must hand back the flagged original, never fault.
    InferenceEngine engine(
        cfg, makeAnnReplicaFactory(shape.net, shape.quant, abftOn(),
                                   /*variation_sigma=*/0.0,
                                   /*chip_seed=*/5, rel));

    int flagged = 0;
    for (int i = 0; i < 16; ++i) {
        const InferenceResult result =
            engine.submit(shape.data.image(i)).get();
        ASSERT_TRUE(result.ok());
        EXPECT_FALSE(result.integrity.reExecuted);
        flagged += result.integrity.clean() ? 0 : 1;
    }
    EXPECT_GT(flagged, 0);
    engine.shutdown();
}

// ---------------------------------------------------------------------------
// Health escalation
// ---------------------------------------------------------------------------

/** Retention-decay ramp well past tolerance (same as resilience_test). */
ReliabilityConfig
decayRamp()
{
    ReliabilityConfig rel;
    rel.faults = std::make_shared<RetentionDecayFaultModel>(
        /*elapsed=*/5.0, /*tau=*/1.0, /*sigma=*/0.3);
    return rel;
}

TEST(AbftHealth, ProbeEveryOneProbesAfterEveryRequest)
{
    AnnShape shape(10, /*seed=*/13);

    HealthConfig hc;
    hc.probeEvery = 1;
    std::vector<Tensor> canaries{shape.data.image(40), shape.data.image(41)};

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.health = std::make_shared<HealthMonitor>(hc, canaries);
    InferenceEngine engine(cfg,
                           makeAnnReplicaFactory(shape.net, shape.quant));

    const int requests = 6;
    for (int i = 0; i < requests; ++i)
        EXPECT_TRUE(engine.submit(shape.data.image(i)).get().ok());
    engine.waitIdle();
    EXPECT_EQ(cfg.health->probes(), requests);
    EXPECT_EQ(cfg.health->degradations(), 0);
    EXPECT_EQ(cfg.health->health(0), ReplicaHealth::Healthy);
    engine.shutdown();
}

TEST(AbftHealth, ViolationEscalatesProbeAheadOfCadence)
{
    AnnShape shape(10, /*seed=*/13);

    HealthConfig hc;
    hc.probeEvery = 1000000; // the cadence alone would never probe
    std::vector<Tensor> canaries{shape.data.image(40), shape.data.image(41)};
    auto health = std::make_shared<HealthMonitor>(hc, canaries);
    health->setFallback(makeFunctionalAnnReplicaFactory(shape.net));

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.health = health;
    cfg.abft.reExecute = true;
    cfg.abft.fallback = makeFunctionalAnnReplicaFactory(shape.net);
    // Clean factory: canaries are captured pristine; the decay ramp
    // lands afterwards, so the escalated probe sees real deviation.
    InferenceEngine engine(
        cfg, makeAnnReplicaFactory(shape.net, shape.quant, abftOn()));

    EXPECT_TRUE(engine.submit(shape.data.image(0)).get().ok());
    engine.waitIdle();
    EXPECT_EQ(health->probes(), 0);

    engine.withReplicas([&](ChipReplica &replica) {
        EXPECT_TRUE(replica.reprogram(decayRamp()));
    });

    // The decayed answer violates the checksum; the worker re-executes
    // it on the fallback AND immediately probes -- the probe ladder
    // repairs the slot (default repairWith reprograms cleanly).
    const InferenceResult result = engine.submit(shape.data.image(1)).get();
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.integrity.reExecuted);
    engine.waitIdle();
    EXPECT_GE(health->probes(), 1)
        << "violation did not trigger an immediate probe";
    EXPECT_EQ(health->degradations(), 1);
    EXPECT_EQ(health->repairs(), 1);
    EXPECT_EQ(health->health(0), ReplicaHealth::Repaired);

    // The repaired slot serves clean, unflagged answers again.
    const InferenceResult after = engine.submit(shape.data.image(2)).get();
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(after.integrity.clean());
    EXPECT_FALSE(after.integrity.reExecuted);
    engine.shutdown();
}

TEST(AbftHealth, EscalatedProbeOnQuarantinedSlotIsANoOp)
{
    AnnShape shape(10, /*seed=*/13);

    HealthConfig hc;
    hc.tolerance = 1e-6;
    hc.maxRepairAttempts = 1;
    hc.repairWith = decayRamp(); // "repair" that re-applies the damage
    std::vector<Tensor> canaries{shape.data.image(40), shape.data.image(41)};
    HealthMonitor monitor(hc, canaries);
    monitor.setFallback(makeFunctionalAnnReplicaFactory(shape.net));

    auto replica = makeAnnReplicaFactory(shape.net, shape.quant)(0);
    monitor.captureExpected(*replica, /*default_timesteps=*/8);
    monitor.resizeSlots(1);

    // Silent damage, then the first (violation-escalated) probe walks
    // the full ladder: degrade -> futile repair -> demote to functional.
    EXPECT_TRUE(replica->reprogram(decayRamp()));
    EXPECT_EQ(monitor.probeNow(0, replica), ReplicaHealth::Demoted);
    EXPECT_EQ(monitor.degradations(), 1);
    EXPECT_EQ(monitor.demotions(), 1);
    const long long probes_after_demotion = monitor.probes();

    // A second escalated probe arrives while the slot is quarantined
    // (e.g. a violation raced the demotion): terminal states return
    // settled, no re-probe, no double demotion, no replica churn.
    ChipReplica *demoted = replica.get();
    EXPECT_EQ(monitor.probeNow(0, replica), ReplicaHealth::Demoted);
    EXPECT_EQ(monitor.probes(), probes_after_demotion);
    EXPECT_EQ(monitor.degradations(), 1);
    EXPECT_EQ(monitor.demotions(), 1);
    EXPECT_EQ(replica.get(), demoted) << "quarantined replica was replaced";

    // The demoted (functional) replica still answers; its result path
    // is promise-settled exactly once by the caller, and the monitor
    // never touches it.
    const InferenceResult result =
        replica->run(annRequest(shape.data.image(0), 99));
    EXPECT_TRUE(result.ok());
    EXPECT_GE(result.predictedClass, 0);
    EXPECT_LT(result.predictedClass, kClasses);
}

} // namespace
} // namespace nebula
