/**
 * @file
 * Baseline-model tests (ISAAC, INXS) and the headline cross-model
 * comparisons of the paper's abstract.
 */

#include <gtest/gtest.h>

#include "arch/energy_model.hpp"
#include "baselines/inxs.hpp"
#include "baselines/isaac.hpp"
#include "nn/conv.hpp"
#include "nn/models.hpp"

namespace nebula {
namespace {

NetworkMapping
mapModel(Network &net, int channels, int spatial)
{
    Tensor x({1, channels, spatial, spatial});
    net.forward(x);
    return LayerMapper().map(net);
}

TEST(Isaac, SlicesAndBitSerialCycles)
{
    IsaacConfig cfg;
    EXPECT_EQ(cfg.weightSlices(), 2); // 4-bit weights in 2-bit cells
    EXPECT_EQ(cfg.inputBits, 4);

    const IsaacConfig full = IsaacConfig::original16bit();
    EXPECT_EQ(full.weightSlices(), 8);
    EXPECT_EQ(full.inputBits, 16);
}

TEST(Isaac, CrossbarCountDenseLayer)
{
    Conv2d conv(64, 128, 3, 1, 1); // Rf 576, kernels 128
    Tensor x({1, 64, 8, 8});
    conv.forward(x);
    const auto m = LayerMapper().mapLayer(conv, 0);
    IsaacModel isaac;
    // rows: ceil(576/128)=5 chunks; cols: 128*2 slices -> 2 chunks.
    EXPECT_EQ(isaac.crossbarsFor(m), 10);
}

TEST(Isaac, CrossbarCountDepthwiseDiagonal)
{
    DwConv2d conv(512, 3, 1, 1);
    Tensor x({1, 512, 4, 4});
    conv.forward(x);
    const auto m = LayerMapper().mapLayer(conv, 0);
    IsaacModel isaac;
    // 14 kernels per crossbar (128/9 by rows) -> ceil(512/14) = 37.
    EXPECT_EQ(isaac.crossbarsFor(m), 37);
}

TEST(Isaac, EnergyScalesWithBitSerialCycles)
{
    Conv2d conv(64, 64, 3, 1, 1);
    Tensor x({1, 64, 8, 8});
    conv.forward(x);
    const auto m = LayerMapper().mapLayer(conv, 0);

    IsaacConfig cfg4;
    IsaacModel isaac4(cfg4);
    IsaacConfig cfg8 = cfg4;
    cfg8.inputBits = 8;
    IsaacModel isaac8(cfg8);
    const double e4 = isaac4.evaluateLayer(m, 0.5).energy;
    const double e8 = isaac8.evaluateLayer(m, 0.5).energy;
    EXPECT_NEAR(e8 / e4, 2.0, 1e-9);
}

TEST(Isaac, AdcShareDominates)
{
    Conv2d conv(64, 64, 3, 1, 1);
    Tensor x({1, 64, 8, 8});
    conv.forward(x);
    const auto m = LayerMapper().mapLayer(conv, 0);
    IsaacModel isaac;
    const auto e = isaac.evaluateLayer(m, 0.5);
    EXPECT_GT(e.adcEnergy / e.energy, 0.3);
    EXPECT_LT(e.adcEnergy, e.energy);
}

TEST(Isaac, NebulaWinsOnEveryBenchmark)
{
    // Paper Figs. 12/13a: NEBULA-ANN is ~2.8-7.9x more energy-efficient
    // than 4-bit-adapted ISAAC, with MobileNet the biggest win.
    struct Case { const char *name; Network net; int ch, sp, T; };
    EnergyModel model;
    IsaacModel isaac;

    auto ratio_for = [&](Network net, int ch, int sp) {
        const auto mapping = mapModel(net, ch, sp);
        const auto act =
            ActivityProfile::uniform(mapping.layers.size(), 0.5);
        const auto nebula_e = model.evaluateAnn(mapping, act);
        const auto isaac_e = isaac.evaluate(mapping, 0.5);
        return isaac_e.totalEnergy / nebula_e.totalEnergy;
    };

    const double vgg = ratio_for(buildVgg13(32, 3, 10, 1.0f, 1), 3, 32);
    const double mobilenet =
        ratio_for(buildMobilenetV1(32, 3, 10, 1.0f, 1), 3, 32);
    const double alexnet =
        ratio_for(buildAlexNet(64, 3, 100, 1.0f, 1), 3, 64);

    EXPECT_GT(vgg, 2.0);
    EXPECT_GT(alexnet, 2.0);
    EXPECT_GT(mobilenet, 4.0);
    EXPECT_LT(mobilenet, 12.0);
    // MobileNet shows the largest savings (paper: 7.9x).
    EXPECT_GT(mobilenet, vgg);
    EXPECT_GT(mobilenet, alexnet);
}

TEST(Isaac, DepthwiseLayersSaveMore)
{
    // Paper Fig. 12: depthwise (even) layers show higher savings than
    // pointwise (odd) layers on average.
    Network net = buildMobilenetV1(32, 3, 10, 1.0f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    IsaacModel isaac;
    const auto act = ActivityProfile::uniform(mapping.layers.size(), 0.5);
    const auto nebula_e = model.evaluateAnn(mapping, act);
    const auto isaac_e = isaac.evaluate(mapping, 0.5);

    double dw_ratio = 0.0, pw_ratio = 0.0;
    int dw_n = 0, pw_n = 0;
    for (size_t i = 0; i < mapping.layers.size(); ++i) {
        const double r =
            isaac_e.layers[i].energy / nebula_e.layers[i].energy;
        if (mapping.layers[i].kind == LayerKind::DwConv) {
            dw_ratio += r;
            ++dw_n;
        } else if (mapping.layers[i].rf <= 128 &&
                   mapping.layers[i].kind == LayerKind::Conv &&
                   i > 0) {
            pw_ratio += r;
            ++pw_n;
        }
    }
    ASSERT_GT(dw_n, 0);
    ASSERT_GT(pw_n, 0);
    EXPECT_GT(dw_ratio / dw_n, pw_ratio / pw_n);
}

TEST(Inxs, NeuronUpdatesCountEveryTimestep)
{
    Conv2d conv(16, 32, 3, 1, 1);
    Tensor x({1, 16, 8, 8});
    conv.forward(x);
    const auto m = LayerMapper().mapLayer(conv, 0);
    InxsModel inxs;
    const auto e = inxs.evaluateLayer(m, 0.1, 50);
    EXPECT_EQ(e.neuronUpdates, 32LL * 8 * 8 * 50);
    EXPECT_GT(e.membraneEnergy, 0.0);
    EXPECT_GT(e.adcEnergy, 0.0);
}

TEST(Inxs, EnergyLinearInTimesteps)
{
    Conv2d conv(16, 32, 3, 1, 1);
    Tensor x({1, 16, 8, 8});
    conv.forward(x);
    const auto m = LayerMapper().mapLayer(conv, 0);
    InxsModel inxs;
    const double e50 = inxs.evaluateLayer(m, 0.1, 50).energy;
    const double e100 = inxs.evaluateLayer(m, 0.1, 100).energy;
    EXPECT_NEAR(e100 / e50, 2.0, 0.01);
}

TEST(Inxs, MembraneTrafficDominates)
{
    // The SRAM read-modify-write per neuron per timestep is the
    // overhead NEBULA's DW neurons eliminate.
    Conv2d conv(64, 128, 3, 1, 1);
    Tensor x({1, 64, 8, 8});
    conv.forward(x);
    const auto m = LayerMapper().mapLayer(conv, 0);
    InxsModel inxs;
    const auto e = inxs.evaluateLayer(m, 0.05, 100);
    EXPECT_GT(e.membraneEnergy / e.energy, 0.4);
}

TEST(Inxs, NebulaSnnRoughlyFortyFiveTimesBetter)
{
    // Paper Sec. VI-B: ~45x on VGG, FC layers saving more than conv.
    Network net = buildVgg13(32, 3, 10, 1.0f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    InxsModel inxs;
    const auto act = ActivityProfile::decaying(mapping.layers.size());
    const int T = 300;

    const auto nebula_e = model.evaluateSnn(mapping, act, T);
    const auto inxs_e = inxs.evaluate(mapping, act.inputActivity, T);
    const double ratio = inxs_e.totalEnergy / nebula_e.totalEnergy;
    EXPECT_GT(ratio, 20.0);
    EXPECT_LT(ratio, 90.0);

    // FC layers save more than convs (small Rf avoids NEBULA's ADC).
    double fc_ratio = 0.0, conv_ratio = 0.0;
    int fc_n = 0, conv_n = 0;
    for (size_t i = 0; i < mapping.layers.size(); ++i) {
        const double r =
            inxs_e.layers[i].energy / nebula_e.layers[i].energy;
        if (mapping.layers[i].kind == LayerKind::Linear) {
            fc_ratio += r;
            ++fc_n;
        } else {
            conv_ratio += r;
            ++conv_n;
        }
    }
    ASSERT_GT(fc_n, 0);
    ASSERT_GT(conv_n, 0);
    EXPECT_GT(fc_ratio / fc_n, conv_ratio / conv_n);
}

} // namespace
} // namespace nebula
