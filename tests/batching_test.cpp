/**
 * @file
 * Batch-equivalence suite for the dynamic micro-batching path. Pins
 * three layers of the stack to the solo evaluation they must reproduce
 * bit-for-bit:
 *
 *  - circuit: CrossbarArray::evaluateIdealBatch per-window currents AND
 *    per-window energies against standalone evaluateIdeal, across 650+
 *    seeded random cases including faulted / write-verified / spare-
 *    column-remapped arrays (failures shrink to a minimal reproducer);
 *  - arch: NebulaChip::runAnnBatch logits against runAnn on MLP, conv
 *    (LeNet5) and depthwise (MobileNet) models, plus per-image activity
 *    attribution summing to the whole-batch stats delta;
 *  - runtime: the worker's deadline-aware gather window -- forced
 *    multi-request batches are bit-identical to a sequential chip, no
 *    request is ever starved past its deadline by the window, flush-time
 *    expiry/cancellation yield typed outcomes, a poisoned batch replica
 *    faults typed and recovers via supervisor restart, and random
 *    arrivals x deadlines x shed policies always resolve every future.
 *
 * The suite runs under ThreadSanitizer in CI (NEBULA_SANITIZE=thread).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "arch/chip.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "runtime/engine.hpp"
#include "runtime/replica.hpp"
#include "testing/reference_crossbar.hpp"

namespace nebula {
namespace testing {
namespace {

constexpr double kCycle = 110e-9;

/** Run @p cases seeded cases; shrink and report the first failure. */
void
runCases(int cases, uint64_t seed_base,
         const std::function<CaseConfig(uint64_t)> &generate,
         const CasePredicate &mismatch)
{
    for (int k = 0; k < cases; ++k) {
        const uint64_t seed = seed_base + static_cast<uint64_t>(k);
        const CaseConfig config = generate(seed);
        const std::string detail = mismatch(config);
        if (detail.empty())
            continue;
        std::string min_detail;
        const CaseConfig minimal = shrinkCase(config, mismatch, &min_detail);
        FAIL() << "batch-equivalence mismatch: " << detail
               << "\n  original: " << config.describe()
               << "\n  minimal:  " << minimal.describe()
               << "\n  minimal mismatch: " << min_detail;
    }
}

/**
 * Compare a batched evaluation against per-window solo evaluateIdeal:
 * currents and per-window energies bit-exact, total energy equal to the
 * ascending-order sum of the per-window energies.
 */
std::string
compareBatchToSolo(const CaseConfig &config, int min_batch, int max_batch)
{
    BuiltCase built = buildCase(config);
    Rng rng(config.seed ^ 0xb47c41ull);
    const int rows = built.xbar->rows();
    const int cols = built.xbar->cols();
    const int batch = rng.uniformInt(min_batch, max_batch);
    std::vector<double> windows(static_cast<size_t>(batch) * rows);
    for (auto &v : windows)
        v = rng.bernoulli(config.sparsity) ? 0.0 : rng.uniform(0.0, 1.0);

    const CrossbarBatchEval got =
        built.xbar->evaluateIdealBatch(windows, batch, kCycle);
    if (got.currents.size() != static_cast<size_t>(batch) * cols)
        return "batched currents size mismatch";
    if (got.energies.size() != static_cast<size_t>(batch))
        return "per-window energies size mismatch";

    std::vector<double> window(static_cast<size_t>(rows));
    double energy_sum = 0.0;
    for (int b = 0; b < batch; ++b) {
        std::copy_n(windows.begin() + static_cast<size_t>(b) * rows, rows,
                    window.begin());
        const CrossbarEval solo = built.xbar->evaluateIdeal(window, kCycle);
        for (int c = 0; c < cols; ++c) {
            const double batched =
                got.currents[static_cast<size_t>(b) * cols + c];
            if (batched != solo.currents[static_cast<size_t>(c)]) {
                std::ostringstream out;
                out << "window " << b << " col " << c << ": batched "
                    << batched << " != solo "
                    << solo.currents[static_cast<size_t>(c)];
                return out.str();
            }
        }
        if (got.energies[static_cast<size_t>(b)] != solo.energy) {
            std::ostringstream out;
            out << "window " << b << " energy: batched "
                << got.energies[static_cast<size_t>(b)] << " != solo "
                << solo.energy;
            return out.str();
        }
        energy_sum += got.energies[static_cast<size_t>(b)];
    }
    if (got.energy != energy_sum)
        return "total energy is not the ascending sum of per-window "
               "energies";
    return std::string();
}

// ---------------------------------------------------------------------
// Circuit layer: 650 seeded differential cases (500+ required), solo vs
// batch-of-2..8 bit-exact, including faulted / remapped arrays.
// ---------------------------------------------------------------------

TEST(BatchingDifferential, PerWindowCurrentsAndEnergiesMatchSoloBitExact)
{
    // randomCase sweeps geometry, spare columns, fault maps, mitigations
    // and input sparsity; batch-of-2 covers the smallest coalesced case
    // and 8 crosses the kernel's 4-window register-blocking boundary.
    runCases(500, 7000, randomCase, [](const CaseConfig &config) {
        return compareBatchToSolo(config, 2, 8);
    });
}

TEST(BatchingDifferential, FaultedRepairedArraysBatchBitExact)
{
    // Force the reliability machinery on every case: stuck cells,
    // write-verify and spare-column remapping must be invisible to the
    // batched kernel (it reads the same remapped conductance view).
    runCases(
        150, 7600,
        [](uint64_t seed) {
            CaseConfig config = randomCase(seed);
            config.withFaults = true;
            config.writeVerify = true;
            config.repair = true;
            if (config.spareCols == 0)
                config.spareCols = 1;
            return config;
        },
        [](const CaseConfig &config) {
            return compareBatchToSolo(config, 2, 6);
        });
}

// ---------------------------------------------------------------------
// Chip layer: runAnnBatch vs solo runAnn, per-image attribution.
// ---------------------------------------------------------------------

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    if (a.size() != b.size())
        return false;
    for (long long i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

/**
 * Program @p net onto a chip, run @p images solo and batched, and
 * require bit-identical logits plus exact per-image stats attribution
 * (counters exact, energies to FP-accumulation tolerance).
 */
void
expectBatchMatchesSolo(Network &net, const Tensor &calibration,
                       const std::vector<Tensor> &images)
{
    const QuantizationResult quant = quantizeNetwork(net, calibration);

    NebulaChip chip;
    chip.programAnn(net, quant);

    std::vector<Tensor> solo;
    solo.reserve(images.size());
    for (const Tensor &image : images)
        solo.push_back(chip.runAnn(image));

    const ChipStats before = chip.stats();
    const AnnBatchResult batch = chip.runAnnBatch(images);
    const ChipStats after = chip.stats();

    ASSERT_EQ(batch.logits.size(), images.size());
    ASSERT_EQ(batch.perImage.size(), images.size());
    for (size_t i = 0; i < images.size(); ++i)
        EXPECT_TRUE(bitIdentical(batch.logits[i], solo[i]))
            << "batched logits diverged from solo on image " << i;

    // The per-image activity slices must sum to the whole-batch delta:
    // counters exactly, energies to FP-reassociation tolerance (the
    // per-image slices accumulate in a different order than the chip's
    // running totals).
    ChipStats sum;
    for (const ChipStats &s : batch.perImage)
        sum.merge(s);
    EXPECT_EQ(sum.crossbarEvals, after.crossbarEvals - before.crossbarEvals);
    EXPECT_EQ(sum.adcConversions,
              after.adcConversions - before.adcConversions);
    EXPECT_EQ(sum.nocPackets, after.nocPackets - before.nocPackets);
    const double xbar_delta = after.crossbarEnergy - before.crossbarEnergy;
    EXPECT_NEAR(sum.crossbarEnergy, xbar_delta,
                1e-9 * std::max(1.0, std::abs(xbar_delta)));
    const double noc_delta = after.nocEnergy - before.nocEnergy;
    EXPECT_NEAR(sum.nocEnergy, noc_delta,
                1e-9 * std::max(1.0, std::abs(noc_delta)));
    for (const ChipStats &s : batch.perImage) {
        EXPECT_GT(s.crossbarEvals, 0);
        EXPECT_GT(s.crossbarEnergy, 0.0);
    }
}

TEST(BatchingChip, RunAnnBatchMatchesSoloMlp)
{
    SyntheticDigits data(16, 12, /*seed=*/9);
    Network net = buildMlp3(12, 1, 10, /*seed=*/3);
    std::vector<Tensor> images;
    for (int i = 0; i < 6; ++i)
        images.push_back(data.image(i));
    expectBatchMatchesSolo(net, data.firstImages(8), images);
}

TEST(BatchingChip, RunAnnBatchMatchesSoloConv)
{
    // LeNet5 exercises the batched Conv window path (image-major
    // per-output-row windows).
    SyntheticDigits data(8, 12, /*seed=*/21);
    Network net = buildLenet5(12, 1, 10, /*seed=*/997);
    std::vector<Tensor> images;
    for (int i = 0; i < 3; ++i)
        images.push_back(data.image(i));
    expectBatchMatchesSolo(net, data.firstImages(4), images);
}

TEST(BatchingChip, RunAnnBatchMatchesSoloDepthwise)
{
    // MobileNet exercises the batched depthwise-conv path (per-group
    // windows with group conductance offsets).
    SyntheticTextures data(8, 10, 16, 3, /*seed=*/2301);
    Network net = buildMobilenetV1(16, 3, 10, 0.25f, /*seed=*/43);
    std::vector<Tensor> images;
    for (int i = 0; i < 2; ++i)
        images.push_back(data.image(i));
    expectBatchMatchesSolo(net, data.firstImages(4), images);
}

TEST(BatchingChip, RunAnnBatchScalarBaselineMatchesSolo)
{
    // The fastEval == false fallback loops solo evaluateLayer per image
    // and must stay equivalent too (it is the committed baseline the
    // benchmarks compare the batched kernels against).
    SyntheticDigits data(8, 12, /*seed=*/5);
    Network net = buildMlp3(12, 1, 10, /*seed=*/7);
    const QuantizationResult quant = quantizeNetwork(net, data.firstImages(4));
    NebulaConfig config;
    config.fastEval = false;
    NebulaChip chip(config);
    chip.programAnn(net, quant);
    std::vector<Tensor> images;
    for (int i = 0; i < 4; ++i)
        images.push_back(data.image(i));
    std::vector<Tensor> solo;
    for (const Tensor &image : images)
        solo.push_back(chip.runAnn(image));
    const AnnBatchResult batch = chip.runAnnBatch(images);
    ASSERT_EQ(batch.logits.size(), images.size());
    for (size_t i = 0; i < images.size(); ++i)
        EXPECT_TRUE(bitIdentical(batch.logits[i], solo[i]))
            << "scalar-baseline batched logits diverged on image " << i;
}

// ---------------------------------------------------------------------
// Runtime layer: the worker's gather window and flush semantics.
// ---------------------------------------------------------------------

/** Shared engine prototypes (untrained MLP: bit-exactness needs none). */
struct Prototypes
{
    SyntheticDigits data{48, 12, /*seed=*/9};
    Network quantNet;
    QuantizationResult quant;

    Prototypes()
        : quantNet(buildMlp3(12, 1, 10, /*seed=*/3)),
          quant(quantizeNetwork(quantNet, data.firstImages(16)))
    {
    }
};

Prototypes &
protos()
{
    static Prototypes p;
    return p;
}

/**
 * Pass-through wrapper that blocks inside solo run() until released.
 * Used as a "plug": the first request parks the single worker inside
 * the replica while the test queues more requests behind it, so the
 * next gather deterministically drains a multi-request batch. Forwards
 * supportsBatch/runBatch so the wrapped replica still coalesces.
 */
class GatedBatchReplica : public ChipReplica
{
  public:
    GatedBatchReplica(std::unique_ptr<ChipReplica> base,
                      std::atomic<bool> *release, std::atomic<int> *entered)
        : base_(std::move(base)), release_(release), entered_(entered)
    {
    }

    InferenceResult run(const InferenceRequest &request) override
    {
        entered_->fetch_add(1, std::memory_order_acq_rel);
        while (!release_->load(std::memory_order_acquire))
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        return base_->run(request);
    }

    bool supportsBatch() const override { return base_->supportsBatch(); }

    std::vector<InferenceResult>
    runBatch(const std::vector<const InferenceRequest *> &requests) override
    {
        return base_->runBatch(requests);
    }

    const ChipStats *chipStats() const override { return base_->chipStats(); }
    void clearStats() override { base_->clearStats(); }
    const char *mode() const override { return base_->mode(); }

  private:
    std::unique_ptr<ChipReplica> base_;
    std::atomic<bool> *release_;
    std::atomic<int> *entered_;
};

/**
 * Batch-capable replica whose first @p poisoned_replicas instances
 * throw on every evaluation; supervisor restarts then produce healthy
 * pass-through instances from the same factory.
 */
class PoisonedBatchReplica : public ChipReplica
{
  public:
    PoisonedBatchReplica(std::unique_ptr<ChipReplica> base, bool poisoned)
        : base_(std::move(base)), poisoned_(poisoned)
    {
    }

    InferenceResult run(const InferenceRequest &request) override
    {
        if (poisoned_)
            throw std::runtime_error("batch replica poisoned");
        return base_->run(request);
    }

    bool supportsBatch() const override { return base_->supportsBatch(); }

    std::vector<InferenceResult>
    runBatch(const std::vector<const InferenceRequest *> &requests) override
    {
        if (poisoned_)
            throw std::runtime_error("batch replica poisoned");
        return base_->runBatch(requests);
    }

    const char *mode() const override { return base_->mode(); }

  private:
    std::unique_ptr<ChipReplica> base_;
    bool poisoned_;
};

TEST(BatchingRuntime, ForcedBatchBitIdenticalToSequentialChip)
{
    Prototypes &p = protos();
    const int n = 6;

    NebulaChip reference;
    reference.programAnn(p.quantNet, p.quant);
    std::vector<Tensor> expected;
    for (int i = 0; i < n; ++i)
        expected.push_back(reference.runAnn(p.data.image(i)));

    std::atomic<bool> release{false};
    std::atomic<int> entered{0};
    ReplicaFactory base = makeAnnReplicaFactory(p.quantNet, p.quant);
    ReplicaFactory factory = [&, base](int worker_id) {
        return std::make_unique<GatedBatchReplica>(base(worker_id), &release,
                                                   &entered);
    };

    EngineConfig cfg;
    cfg.numWorkers = 1; // deterministic batch formation
    cfg.queueCapacity = 16;
    cfg.batching.maxBatch = 8;
    cfg.batching.maxWaitUs = 0; // drain-only: no added latency
    InferenceEngine engine(cfg, factory);

    // Plug the worker, queue the real requests behind it, release.
    auto plug = engine.submit(p.data.image(n));
    while (entered.load(std::memory_order_acquire) == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < n; ++i)
        futures.push_back(engine.submit(p.data.image(i)));
    release.store(true, std::memory_order_release);

    EXPECT_TRUE(plug.get().ok());
    for (int i = 0; i < n; ++i) {
        const InferenceResult result = futures[static_cast<size_t>(i)].get();
        ASSERT_TRUE(result.ok()) << result.errorMessage;
        EXPECT_TRUE(bitIdentical(result.logits,
                                 expected[static_cast<size_t>(i)]))
            << "batched engine logits diverged on image " << i;
        EXPECT_EQ(result.predictedClass,
                  expected[static_cast<size_t>(i)].argmaxRow(0));
        EXPECT_EQ(result.workerId, 0);
    }

    // The gather actually coalesced: a multi-request flush was recorded.
    StatGroup stats = engine.runtimeStats();
    ASSERT_TRUE(stats.hasScalar("batch.size"));
    EXPECT_GE(stats.scalarAt("batch.size").max(),
              static_cast<double>(n));
    engine.shutdown();
}

TEST(BatchingRuntime, SubmitBatchMatchesIndividualSubmits)
{
    Prototypes &p = protos();
    const int n = 8;
    std::vector<Tensor> images;
    for (int i = 0; i < n; ++i)
        images.push_back(p.data.image(i));

    EngineConfig cfg;
    cfg.numWorkers = 2;
    cfg.batching.maxBatch = 4;
    cfg.batching.maxWaitUs = 200;

    std::vector<Tensor> via_batch;
    {
        InferenceEngine engine(cfg,
                               makeAnnReplicaFactory(p.quantNet, p.quant));
        auto futures = engine.submitBatch(images);
        for (auto &f : futures) {
            InferenceResult r = f.get();
            ASSERT_TRUE(r.ok()) << r.errorMessage;
            via_batch.push_back(std::move(r.logits));
        }
        engine.shutdown();
    }
    {
        InferenceEngine engine(cfg,
                               makeAnnReplicaFactory(p.quantNet, p.quant));
        for (int i = 0; i < n; ++i) {
            InferenceResult r = engine.submit(images[static_cast<size_t>(i)])
                                    .get();
            ASSERT_TRUE(r.ok()) << r.errorMessage;
            EXPECT_TRUE(bitIdentical(r.logits,
                                     via_batch[static_cast<size_t>(i)]))
                << "submitBatch vs N x submit diverged on image " << i;
        }
        engine.shutdown();
    }
}

TEST(BatchingRuntime, FlushShedsExpiredAndCancelledTyped)
{
    Prototypes &p = protos();

    std::atomic<bool> release{false};
    std::atomic<int> entered{0};
    ReplicaFactory base = makeAnnReplicaFactory(p.quantNet, p.quant);
    ReplicaFactory factory = [&, base](int worker_id) {
        return std::make_unique<GatedBatchReplica>(base(worker_id), &release,
                                                   &entered);
    };

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.queueCapacity = 16;
    cfg.batching.maxBatch = 8;
    cfg.batching.maxWaitUs = 0;
    InferenceEngine engine(cfg, factory);

    auto plug = engine.submit(p.data.image(0));
    while (entered.load(std::memory_order_acquire) == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(100));

    // A: deadline that expires while the worker is still plugged.
    InferenceRequest expired;
    expired.image = p.data.image(1);
    expired.deadlineNs = 20ull * 1000 * 1000; // 20 ms
    auto expired_future = engine.submit(std::move(expired));

    // B: cancelled while queued.
    InferenceRequest cancelled;
    cancelled.image = p.data.image(2);
    cancelled.cancel = std::make_shared<std::atomic<bool>>(false);
    CancelFlag cancel_flag = cancelled.cancel;
    auto cancelled_future = engine.submit(std::move(cancelled));
    cancel_flag->store(true, std::memory_order_release);

    // C: healthy request in the same gather.
    auto ok_future = engine.submit(p.data.image(3));

    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true, std::memory_order_release);

    EXPECT_TRUE(plug.get().ok());
    const InferenceResult expired_result = expired_future.get();
    EXPECT_EQ(expired_result.error, RuntimeErrorKind::Timeout);
    const InferenceResult cancelled_result = cancelled_future.get();
    EXPECT_EQ(cancelled_result.error, RuntimeErrorKind::Cancelled);
    const InferenceResult ok_result = ok_future.get();
    ASSERT_TRUE(ok_result.ok()) << ok_result.errorMessage;

    NebulaChip reference;
    reference.programAnn(p.quantNet, p.quant);
    EXPECT_TRUE(bitIdentical(ok_result.logits,
                             reference.runAnn(p.data.image(3))));
    engine.shutdown();
}

TEST(BatchingRuntime, GatherWindowNeverStarvesLoneDeadlineRequest)
{
    Prototypes &p = protos();

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.batching.maxBatch = 8;
    cfg.batching.maxWaitUs = 2u * 1000 * 1000; // 2 s gather window
    InferenceEngine engine(cfg, makeAnnReplicaFactory(p.quantNet, p.quant));

    // A lone request with a 300 ms budget and an empty queue: the
    // window must close a slack margin before the deadline and the
    // request must be evaluated, not held to expiry or for the full
    // 2 s window.
    const auto start = std::chrono::steady_clock::now();
    InferenceRequest request;
    request.image = p.data.image(0);
    request.deadlineNs = 300ull * 1000 * 1000;
    const InferenceResult result = engine.submit(std::move(request)).get();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    ASSERT_TRUE(result.ok())
        << "gather window starved a lone deadline request: "
        << result.errorMessage;
    EXPECT_LT(elapsed, 1.5);
    engine.shutdown();
}

TEST(BatchingRuntime, PoisonedBatchReplicaFaultsTypedAndRecovers)
{
    Prototypes &p = protos();

    std::atomic<int> built{0};
    ReplicaFactory base = makeAnnReplicaFactory(p.quantNet, p.quant);
    ReplicaFactory factory = [&, base](int worker_id) {
        const bool poisoned =
            built.fetch_add(1, std::memory_order_acq_rel) == 0;
        return std::make_unique<PoisonedBatchReplica>(base(worker_id),
                                                      poisoned);
    };

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.queueCapacity = 16;
    cfg.maxConsecutiveFaults = 1;
    cfg.batching.maxBatch = 4;
    cfg.batching.maxWaitUs = 100;
    InferenceEngine engine(cfg, factory);

    // First wave hits the poisoned replica: every future resolves to a
    // typed outcome (fault or ok after restart), never a broken promise.
    std::vector<std::future<InferenceResult>> wave1;
    for (int i = 0; i < 4; ++i)
        wave1.push_back(engine.submit(p.data.image(i)));
    int faults = 0;
    for (auto &f : wave1) {
        const InferenceResult r = f.get();
        EXPECT_TRUE(r.ok() || r.error == RuntimeErrorKind::ReplicaFault);
        faults += r.error == RuntimeErrorKind::ReplicaFault ? 1 : 0;
    }
    EXPECT_GE(faults, 1);
    engine.waitIdle();
    EXPECT_GE(engine.workerRestarts(), 1u);

    // Second wave runs on the restarted healthy replica and still
    // batches bit-identically to the sequential reference.
    NebulaChip reference;
    reference.programAnn(p.quantNet, p.quant);
    std::vector<std::future<InferenceResult>> wave2;
    for (int i = 0; i < 4; ++i)
        wave2.push_back(engine.submit(p.data.image(i)));
    for (int i = 0; i < 4; ++i) {
        const InferenceResult r = wave2[static_cast<size_t>(i)].get();
        ASSERT_TRUE(r.ok()) << r.errorMessage;
        EXPECT_TRUE(bitIdentical(r.logits,
                                 reference.runAnn(p.data.image(i))));
    }
    engine.shutdown();
}

TEST(BatchingRuntime, RandomArrivalsDeadlinesPoliciesAlwaysResolveTyped)
{
    Prototypes &p = protos();
    const ShedPolicy policies[] = {ShedPolicy::Block,
                                   ShedPolicy::RejectWhenFull,
                                   ShedPolicy::DeadlineAware};

    for (uint64_t seed = 0; seed < 6; ++seed) {
        Rng rng(seed ^ 0xf022ba7c4ull);
        EngineConfig cfg;
        cfg.numWorkers = rng.uniformInt(1, 3);
        cfg.queueCapacity = 8;
        cfg.shedPolicy = policies[rng.uniformInt(0, 2)];
        cfg.batching.maxBatch = rng.uniformInt(1, 6);
        cfg.batching.maxWaitUs =
            static_cast<uint64_t>(rng.uniformInt(0, 10)) * 100;
        InferenceEngine engine(cfg,
                               makeAnnReplicaFactory(p.quantNet, p.quant));

        std::mutex mutex;
        std::vector<std::future<InferenceResult>> futures;
        auto producer = [&](uint64_t thread_seed) {
            Rng local(thread_seed);
            for (int i = 0; i < 12; ++i) {
                InferenceRequest request;
                request.image = p.data.image(local.uniformInt(0, 15));
                const int roll = local.uniformInt(0, 9);
                if (roll < 3)
                    request.deadlineNs = static_cast<uint64_t>(
                        local.uniformInt(1, 50)) * 1000 * 1000;
                CancelFlag cancel;
                if (roll >= 8) {
                    cancel = std::make_shared<std::atomic<bool>>(false);
                    request.cancel = cancel;
                }
                auto future = engine.submit(std::move(request));
                if (cancel)
                    cancel->store(true, std::memory_order_release);
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    futures.push_back(std::move(future));
                }
                if (local.uniformInt(0, 3) == 0)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(local.uniformInt(0, 300)));
            }
        };
        std::thread a(producer, seed * 2 + 1), b(producer, seed * 2 + 2);
        a.join();
        b.join();

        for (auto &f : futures) {
            const InferenceResult r = f.get();
            // Healthy replicas: the only terminal outcomes are ok and
            // the admission/deadline/cancel sheds.
            EXPECT_TRUE(r.ok() || r.error == RuntimeErrorKind::Timeout ||
                        r.error == RuntimeErrorKind::Shed ||
                        r.error == RuntimeErrorKind::Cancelled)
                << "unexpected outcome: " << r.errorMessage;
            if (r.ok()) {
                EXPECT_EQ(r.logits.size(), 10);
            }
        }
        engine.shutdown();
        EXPECT_EQ(engine.submitted(), engine.completed());
    }
}

} // namespace
} // namespace testing
} // namespace nebula
