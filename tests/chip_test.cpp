/**
 * @file
 * Full-stack integration tests: quantized networks executed through the
 * chip model (DW-MTJ crossbars + drivers + neuron units) must agree
 * with the functional simulator, in both ANN and SNN modes; plus the
 * accumulator unit and chip statistics.
 */

#include <gtest/gtest.h>

#include "arch/accumulator.hpp"
#include "arch/chip.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/datasets.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/pooling.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"
#include "snn/convert.hpp"
#include "snn/snn_sim.hpp"

namespace nebula {
namespace {

/** Small trained CNN on 12x12 digits for end-to-end runs. */
Network
trainedTinyCnn(const SyntheticDigits &train_set)
{
    Rng rng(7);
    Network net("tinycnn");
    net.add<Conv2d>(1, 6, 3, 1, 1)->initKaiming(rng);
    net.add<Relu>();
    net.add<AvgPool2d>(2);
    net.add<Flatten>();
    net.add<Linear>(6 * 6 * 6, 10)->initKaiming(rng);

    TrainConfig cfg;
    cfg.epochs = 5;
    cfg.batchSize = 32;
    cfg.learningRate = 0.08;
    SgdTrainer trainer(cfg);
    trainer.train(net, train_set);
    return net;
}

TEST(ChipStats, MergeAddsEveryCounter)
{
    ChipStats a;
    a.crossbarEvals = 3;
    a.adcConversions = 10;
    a.spikes = 7;
    a.crossbarEnergy = 1.5;
    a.nocPackets = 2;
    a.nocEnergy = 0.25;

    ChipStats b;
    b.crossbarEvals = 5;
    b.adcConversions = 1;
    b.spikes = 11;
    b.crossbarEnergy = 0.5;
    b.nocPackets = 4;
    b.nocEnergy = 0.75;

    a.merge(b);
    EXPECT_EQ(a.crossbarEvals, 8);
    EXPECT_EQ(a.adcConversions, 11);
    EXPECT_EQ(a.spikes, 18);
    EXPECT_DOUBLE_EQ(a.crossbarEnergy, 2.0);
    EXPECT_EQ(a.nocPackets, 6);
    EXPECT_DOUBLE_EQ(a.nocEnergy, 1.0);

    // Merging a default-constructed stats block is a no-op.
    a.merge(ChipStats());
    EXPECT_EQ(a.crossbarEvals, 8);
    EXPECT_DOUBLE_EQ(a.nocEnergy, 1.0);
}

TEST(Accumulator, CountsAndScales)
{
    AccumulatorUnit au(8);
    au.accumulate({1, 0, 1, 1, 0, 0, 0, 1});
    au.accumulate({1, 0, 0, 1, 0, 0, 0, 0});
    EXPECT_EQ(au.count(0), 2);
    EXPECT_EQ(au.count(1), 0);
    EXPECT_EQ(au.count(3), 2);
    EXPECT_EQ(au.additions(), 6);
    EXPECT_EQ(au.window(), 2);

    const auto values = au.scaledValues(2, 3.0f);
    EXPECT_FLOAT_EQ(values[0], 3.0f);  // 2/2 * 3
    EXPECT_FLOAT_EQ(values[7], 1.5f);  // 1/2 * 3
}

TEST(Accumulator, ResetClears)
{
    AccumulatorUnit au(4);
    au.accumulate({1, 1, 1, 1});
    au.reset();
    EXPECT_EQ(au.count(0), 0);
    EXPECT_EQ(au.additions(), 0);
    EXPECT_EQ(au.window(), 0);
}

TEST(Accumulator, SaturatesAtRegisterWidth)
{
    AccumulatorUnit au(1);
    for (int i = 0; i < AccumulatorUnit::kMaxCount + 100; ++i)
        au.accumulate({1});
    EXPECT_EQ(au.count(0), AccumulatorUnit::kMaxCount);
}

TEST(Accumulator, RejectsWideInput)
{
    AccumulatorUnit au(2);
    EXPECT_DEATH({ au.accumulate({1, 1, 1}); }, "wider than AU lanes");
}

TEST(ChipAnn, MatchesFunctionalQuantizedNetwork)
{
    SyntheticDigits train_set(1000, 12, 301);
    SyntheticDigits test_set(60, 12, 302);
    Network net = trainedTinyCnn(train_set);
    const auto quant = quantizeNetwork(net, train_set.firstImages(64));

    NebulaChip chip;
    chip.programAnn(net, quant);

    int agree = 0;
    const int n = 25;
    for (int i = 0; i < n; ++i) {
        const Tensor &image = test_set.image(i);
        Tensor chip_logits = chip.runAnn(image);
        Tensor func_logits =
            net.forward(image.reshaped({1, 1, 12, 12}), false);
        ASSERT_TRUE(chip_logits.sameShape(func_logits));
        agree += (chip_logits.argmaxRow(0) == func_logits.argmaxRow(0));
    }
    // The chip path adds crossbar/neuron quantization on top of the
    // functional 4-bit model; predictions should agree almost always.
    EXPECT_GE(agree, n - 2);
}

TEST(ChipAnn, AccuracyCloseToFunctional)
{
    SyntheticDigits train_set(1000, 12, 303);
    SyntheticDigits test_set(80, 12, 304);
    Network net = trainedTinyCnn(train_set);
    const double float_acc = evaluateAccuracy(net, test_set);
    const auto quant = quantizeNetwork(net, train_set.firstImages(64));

    NebulaChip chip;
    chip.programAnn(net, quant);

    int correct = 0;
    for (int i = 0; i < test_set.size(); ++i) {
        Tensor logits = chip.runAnn(test_set.image(i));
        correct += (logits.argmaxRow(0) == test_set.label(i));
    }
    const double chip_acc = correct / static_cast<double>(test_set.size());
    EXPECT_GT(chip_acc, float_acc - 0.10);
    EXPECT_GT(chip_acc, 0.7);
}

TEST(ChipAnn, StatsCounted)
{
    SyntheticDigits train_set(600, 12, 305);
    Network net = trainedTinyCnn(train_set);
    const auto quant = quantizeNetwork(net, train_set.firstImages(32));

    NebulaChip chip;
    chip.programAnn(net, quant);
    chip.runAnn(train_set.image(0));

    const ChipStats &stats = chip.stats();
    // conv: 144 positions x 1 group + linear: 2 groups (216 rows -> 1?).
    EXPECT_GT(stats.crossbarEvals, 100);
    EXPECT_GT(stats.crossbarEnergy, 0.0);
    EXPECT_GT(stats.adcConversions, 0); // output layer readout
    EXPECT_GT(stats.nocPackets, 0);
    EXPECT_GT(stats.nocEnergy, 0.0);
}

TEST(ChipAnn, DeviceVariationDegradesGracefully)
{
    SyntheticDigits train_set(1000, 12, 306);
    SyntheticDigits test_set(60, 12, 307);
    Network net = trainedTinyCnn(train_set);
    const auto quant = quantizeNetwork(net, train_set.firstImages(64));

    NebulaChip noisy({}, /*variation=*/0.10, /*seed=*/9);
    noisy.programAnn(net, quant);
    int correct = 0;
    for (int i = 0; i < test_set.size(); ++i) {
        Tensor logits = noisy.runAnn(test_set.image(i));
        correct += (logits.argmaxRow(0) == test_set.label(i));
    }
    // Sec. IV-D: 10% device variation costs only a little accuracy.
    EXPECT_GT(correct / static_cast<double>(test_set.size()), 0.6);
}

TEST(ChipAnn, MappingExposed)
{
    SyntheticDigits train_set(600, 12, 308);
    Network net = trainedTinyCnn(train_set);
    const auto quant = quantizeNetwork(net, train_set.firstImages(32));
    NebulaChip chip;
    chip.programAnn(net, quant);
    EXPECT_EQ(chip.mapping().layers.size(), 2u);
    EXPECT_EQ(chip.mapping().layers[0].rf, 9);
    EXPECT_EQ(chip.mapping().layers[1].rf, 216);
}

TEST(ChipSnn, MatchesSnnSimulator)
{
    SyntheticDigits train_set(1000, 12, 309);
    SyntheticDigits test_set(40, 12, 310);
    Network net = trainedTinyCnn(train_set);
    const Tensor calibration = train_set.firstImages(64);

    // Two identical converted models (conversion mutates nothing after
    // folding, so converting twice from the same net is deterministic).
    SpikingModel model_a = convertToSnn(net, calibration);
    SpikingModel model_b = convertToSnn(net, calibration);

    SnnSimulator sim(model_a, 1.0, 71);
    NebulaChip chip;
    chip.programSnn(model_b);

    int agree = 0;
    const int n = 15, T = 40;
    for (int i = 0; i < n; ++i) {
        const auto functional = sim.run(test_set.image(i), T);
        const auto on_chip = chip.runSnn(test_set.image(i), T);
        agree += (functional.predictedClass() == on_chip.predictedClass());
    }
    EXPECT_GE(agree, n - 2);
}

TEST(ChipSnn, SpikeStatisticsPopulated)
{
    SyntheticDigits train_set(600, 12, 311);
    Network net = trainedTinyCnn(train_set);
    SpikingModel model = convertToSnn(net, train_set.firstImages(32));

    NebulaChip chip;
    chip.programSnn(model);
    const auto result = chip.runSnn(train_set.image(0), 30);
    EXPECT_EQ(result.timesteps, 30);
    EXPECT_GT(result.totalSpikes, 0);
    EXPECT_EQ(result.ifActivity.size(), 2u); // relu IF + pool IF
    EXPECT_GT(chip.stats().spikes, 0);
    EXPECT_GT(chip.stats().crossbarEvals, 0);
}

TEST(ChipSnn, AccuracyNearAnn)
{
    SyntheticDigits train_set(1000, 12, 312);
    SyntheticDigits test_set(60, 12, 313);
    Network net = trainedTinyCnn(train_set);
    const double ann_acc = evaluateAccuracy(net, test_set);

    SpikingModel model = convertToSnn(net, train_set.firstImages(64));
    NebulaChip chip;
    chip.programSnn(model);

    int correct = 0;
    for (int i = 0; i < test_set.size(); ++i) {
        const auto result = chip.runSnn(test_set.image(i), 50);
        correct += (result.predictedClass() == test_set.label(i));
    }
    const double snn_acc = correct / static_cast<double>(test_set.size());
    EXPECT_GT(snn_acc, ann_acc - 0.15);
}

TEST(Chip, RequiresProgramBeforeRun)
{
    NebulaChip chip;
    Tensor image({1, 12, 12});
    EXPECT_DEATH({ chip.runAnn(image); }, "no ANN programmed");
    EXPECT_DEATH({ chip.runSnn(image, 10); }, "no SNN programmed");
}

} // namespace
} // namespace nebula
