/**
 * @file
 * Tests for the crossbar, drivers, ADC, neuron units and the Table III
 * component database.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "circuit/adc.hpp"
#include "circuit/component_db.hpp"
#include "circuit/crossbar.hpp"
#include "circuit/driver.hpp"
#include "circuit/neuron_unit.hpp"
#include "circuit/sense.hpp"
#include "common/units.hpp"

namespace nebula {
namespace {

using namespace units;

/** Build a small crossbar with the given weights programmed. */
CrossbarArray
makeCrossbar(int rows, int cols, const std::vector<float> &weights,
             double variation = 0.0)
{
    CrossbarParams p;
    p.rows = rows;
    p.cols = cols;
    p.variationSigma = variation;
    CrossbarArray xbar(p);
    xbar.programWeights(weights);
    return xbar;
}

/** Reference signed dot product with the same quantization the array does. */
std::vector<double>
referenceDotProduct(int rows, int cols, const std::vector<float> &weights,
                    const std::vector<double> &inputs, int levels = 16)
{
    std::vector<double> out(cols, 0.0);
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < cols; ++j) {
            double w = std::clamp<double>(weights[i * cols + j], -1., 1.);
            const int level = static_cast<int>(
                std::lround((w + 1.0) / 2.0 * (levels - 1)));
            w = 2.0 * level / (levels - 1) - 1.0;
            out[j] += w * std::clamp(inputs[i], 0.0, 1.0);
        }
    }
    return out;
}

TEST(Crossbar, IdealMatchesReferenceDotProduct)
{
    const int rows = 16, cols = 8;
    std::vector<float> w(rows * cols);
    for (size_t k = 0; k < w.size(); ++k)
        w[k] = static_cast<float>(std::sin(0.7 * k));
    auto xbar = makeCrossbar(rows, cols, w);

    std::vector<double> x(rows);
    for (int i = 0; i < rows; ++i)
        x[i] = (i % 4) / 3.0;

    const auto eval = xbar.evaluateIdeal(x, 110 * ns);
    const auto ref = referenceDotProduct(rows, cols, w, x);
    const double kappa = xbar.currentScale();
    for (int j = 0; j < cols; ++j)
        EXPECT_NEAR(eval.currents[j] / kappa, ref[j], 1e-6) << "col " << j;
}

TEST(Crossbar, ZeroInputGivesZeroCurrentAndEnergy)
{
    auto xbar = makeCrossbar(8, 8, std::vector<float>(64, 0.5f));
    const auto eval = xbar.evaluateIdeal(std::vector<double>(8, 0.0),
                                         110 * ns);
    for (double i : eval.currents)
        EXPECT_DOUBLE_EQ(i, 0.0);
    EXPECT_DOUBLE_EQ(eval.energy, 0.0);
}

TEST(Crossbar, NegativeWeightsGiveNegativeCurrents)
{
    auto xbar = makeCrossbar(4, 2, std::vector<float>(8, -1.0f));
    const auto eval =
        xbar.evaluateIdeal(std::vector<double>(4, 1.0), 110 * ns);
    for (double i : eval.currents)
        EXPECT_LT(i, 0.0);
}

TEST(Crossbar, WeightRoundTrip)
{
    const int rows = 4, cols = 4;
    std::vector<float> w(rows * cols);
    for (int k = 0; k < rows * cols; ++k)
        w[k] = -1.0f + 2.0f * k / (rows * cols - 1);
    auto xbar = makeCrossbar(rows, cols, w);
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < cols; ++j) {
            // Max quantization error is half a level of the 16-level cell.
            EXPECT_NEAR(xbar.weightAt(i, j), w[i * cols + j], 1.0 / 15.0);
        }
    }
}

TEST(Crossbar, EnergyScalesWithVoltageSquared)
{
    CrossbarParams p;
    p.rows = p.cols = 8;
    std::vector<float> w(64, 0.3f);

    p.readVoltage = 0.25;
    CrossbarArray low(p);
    low.programWeights(w);
    p.readVoltage = 0.75;
    CrossbarArray high(p);
    high.programWeights(w);

    std::vector<double> x(8, 1.0);
    const double e_low = low.evaluateIdeal(x, 110 * ns).energy;
    const double e_high = high.evaluateIdeal(x, 110 * ns).energy;
    EXPECT_NEAR(e_high / e_low, 9.0, 1e-6);
}

TEST(Crossbar, SparseInputsUseLessEnergy)
{
    // The SNN mode's activity-proportional energy: fewer active rows,
    // less ohmic dissipation (paper Sec. V-C).
    auto xbar = makeCrossbar(16, 16, std::vector<float>(256, 0.5f));
    std::vector<double> dense(16, 1.0);
    std::vector<double> sparse(16, 0.0);
    sparse[3] = 1.0;
    const double e_dense = xbar.evaluateIdeal(dense, 110 * ns).energy;
    const double e_sparse = xbar.evaluateIdeal(sparse, 110 * ns).energy;
    EXPECT_NEAR(e_dense / e_sparse, 16.0, 1e-6);
}

TEST(Crossbar, ParasiticApproachesIdealForSmallWireResistance)
{
    CrossbarParams p;
    p.rows = p.cols = 8;
    p.wireResistance = 1e-4;
    std::vector<float> w(64);
    for (size_t k = 0; k < w.size(); ++k)
        w[k] = static_cast<float>(std::cos(0.3 * k));
    CrossbarArray xbar(p);
    xbar.programWeights(w);

    std::vector<double> x(8);
    for (int i = 0; i < 8; ++i)
        x[i] = (i + 1) / 8.0;

    const auto ideal = xbar.evaluateIdeal(x, 110 * ns);
    const auto para = xbar.evaluateParasitic(x, 110 * ns, 2000, 1e-12);
    for (int j = 0; j < 8; ++j) {
        EXPECT_NEAR(para.currents[j], ideal.currents[j],
                    2e-3 * std::abs(ideal.currents[j]) + 1e-9)
            << "col " << j;
    }
}

TEST(Crossbar, ParasiticDegradesWithWireResistance)
{
    // IR drop reduces the delivered dot-product current; larger wire
    // resistance -> more degradation (Sec. V-C design tradeoff).
    std::vector<float> w(32 * 32, 1.0f);
    std::vector<double> x(32, 1.0);

    CrossbarParams p;
    p.rows = p.cols = 32;

    p.wireResistance = 0.5;
    CrossbarArray mild(p);
    mild.programWeights(w);
    p.wireResistance = 8.0;
    CrossbarArray harsh(p);
    harsh.programWeights(w);

    const auto ideal = mild.evaluateIdeal(x, 110 * ns);
    const auto e_mild = mild.evaluateParasitic(x, 110 * ns);
    const auto e_harsh = harsh.evaluateParasitic(x, 110 * ns);

    // Compare the worst (far) column.
    const int j = 31;
    const double loss_mild = 1.0 - e_mild.currents[j] / ideal.currents[j];
    const double loss_harsh = 1.0 - e_harsh.currents[j] / ideal.currents[j];
    EXPECT_GT(loss_harsh, loss_mild);
    EXPECT_GT(loss_mild, 0.0);
}

TEST(Crossbar, VariationPerturbsButPreservesSign)
{
    std::vector<float> w(64, 0.8f);
    auto clean = makeCrossbar(8, 8, w);
    auto noisy = makeCrossbar(8, 8, w, 0.10);

    std::vector<double> x(8, 1.0);
    const auto a = clean.evaluateIdeal(x, 110 * ns);
    const auto b = noisy.evaluateIdeal(x, 110 * ns);
    double max_rel = 0.0;
    for (int j = 0; j < 8; ++j) {
        EXPECT_GT(b.currents[j], 0.0);
        max_rel = std::max(max_rel, std::abs(b.currents[j] - a.currents[j]) /
                                        std::abs(a.currents[j]));
    }
    EXPECT_GT(max_rel, 0.001);
    EXPECT_LT(max_rel, 0.6);
}

TEST(Crossbar, MaxColumnCurrentBoundsEvaluation)
{
    auto xbar = makeCrossbar(16, 4, std::vector<float>(64, 1.0f));
    const auto eval =
        xbar.evaluateIdeal(std::vector<double>(16, 1.0), 110 * ns);
    for (double i : eval.currents)
        EXPECT_LE(std::abs(i), xbar.maxColumnCurrent());
}

class DacBits : public ::testing::TestWithParam<int>
{
};

TEST_P(DacBits, QuantizeRoundTripWithinHalfStep)
{
    DacDriver dac(GetParam());
    const double step = 1.0 / (dac.levels() - 1);
    for (double v = 0.0; v <= 1.0; v += 0.01) {
        const double rec = dac.normalizedOutput(dac.quantize(v));
        EXPECT_NEAR(rec, v, step / 2 + 1e-12) << "v=" << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, DacBits, ::testing::Values(1, 2, 4, 8));

TEST(Dac, ClipsOutOfRange)
{
    DacDriver dac(4);
    EXPECT_EQ(dac.quantize(-0.5), 0);
    EXPECT_EQ(dac.quantize(1.5), 15);
}

TEST(Dac, DriveVectorized)
{
    DacDriver dac(4);
    const auto out = dac.drive({0.0, 0.5, 1.0});
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], 0.0);
    EXPECT_NEAR(out[1], 0.5, 1.0 / 30);
    EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(SpikeDriver, BinaryOutput)
{
    SpikeDriver driver;
    const auto out = driver.drive({1, 0, 1, 1});
    ASSERT_EQ(out.size(), 4u);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 0.0);
    EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(AdcModel, SignedCodesAndReconstruction)
{
    Adc adc(4, 2.0);
    EXPECT_EQ(adc.convert(2.0), 7);
    EXPECT_EQ(adc.convert(-2.0), -7);
    EXPECT_EQ(adc.convert(0.0), 0);
    EXPECT_EQ(adc.conversions(), 3);
    EXPECT_NEAR(adc.reconstruct(7), 2.0, 1e-12);
}

TEST(AdcModel, ClampsOverRange)
{
    Adc adc(4, 1.0);
    EXPECT_EQ(adc.convert(10.0), 7);
    EXPECT_EQ(adc.convert(-10.0), -8);
}

TEST(AdcModel, QuantizationErrorBounded)
{
    Adc adc(4, 1.0);
    for (double v = -1.0; v <= 1.0; v += 0.05) {
        const double rec = adc.reconstruct(adc.convert(v));
        EXPECT_NEAR(rec, v, 1.0 / 7.0) << "v=" << v;
    }
}

TEST(AdcModel, ConvertAllCounts)
{
    Adc adc(4, 1.0);
    adc.convertAll(std::vector<double>(10, 0.5));
    EXPECT_EQ(adc.conversions(), 10);
}

/**
 * End-to-end circuit slice: crossbar + spiking NU implements an IF layer
 * whose spike counts match the algorithmic rate-coded expectation.
 */
TEST(NeuronUnitCircuit, SpikingMatchesAlgorithmicIf)
{
    const int rows = 16, cols = 4;
    std::vector<float> w(rows * cols);
    for (size_t k = 0; k < w.size(); ++k)
        w[k] = static_cast<float>(0.9 * std::sin(0.37 * k));
    auto xbar = makeCrossbar(rows, cols, w);

    std::vector<double> x(rows);
    for (int i = 0; i < rows; ++i)
        x[i] = (i % 3) / 2.0;

    NeuronUnitParams np;
    np.count = cols;
    SpikingNeuronUnit nu(np);
    const double vth = 2.0; // algorithmic threshold
    nu.calibrate(xbar.currentScale(), vth);

    // Algorithmic reference: u += dot; fire & subtract threshold...
    // (device resets to 0, i.e. reset-to-zero semantics).
    const auto ref_dot = referenceDotProduct(rows, cols, w, x);
    std::vector<double> u(cols, 0.0);
    std::vector<int> ref_spikes(cols, 0);
    std::vector<int> dev_spikes(cols, 0);

    const int T = 40;
    for (int t = 0; t < T; ++t) {
        const auto eval = xbar.evaluateIdeal(x, 110 * ns);
        const auto spikes = nu.step(eval.currents);
        for (int j = 0; j < cols; ++j) {
            dev_spikes[j] += spikes[j];
            u[j] += ref_dot[j];
            if (u[j] >= vth) {
                u[j] = 0.0;
                ++ref_spikes[j];
            }
        }
    }
    for (int j = 0; j < cols; ++j)
        EXPECT_NEAR(dev_spikes[j], ref_spikes[j], 1) << "col " << j;
}

TEST(NeuronUnitCircuit, ReluMatchesClippedScaledSum)
{
    const int rows = 8, cols = 4;
    std::vector<float> w(rows * cols, 0.5f);
    auto xbar = makeCrossbar(rows, cols, w);
    std::vector<double> x(rows, 1.0);

    NeuronUnitParams np;
    np.count = cols;
    ReluNeuronUnit nu(np);
    const double ceiling = 8.0; // sum == rows * 0.5 * 1.0 == 4 == half
    nu.calibrate(xbar.currentScale(), ceiling);

    const auto eval = xbar.evaluateIdeal(x, 110 * ns);
    const auto levels = nu.evaluate(eval.currents);
    for (int j = 0; j < cols; ++j)
        EXPECT_NEAR(levels[j], 8, 1) << "col " << j;
}

TEST(NeuronUnitCircuit, ReluSaturates)
{
    const int rows = 8, cols = 2;
    auto xbar = makeCrossbar(rows, cols, std::vector<float>(16, 1.0f));
    NeuronUnitParams np;
    np.count = cols;
    ReluNeuronUnit nu(np);
    nu.calibrate(xbar.currentScale(), 2.0); // ceiling far below the sum

    const auto eval =
        xbar.evaluateIdeal(std::vector<double>(rows, 1.0), 110 * ns);
    for (int level : nu.evaluate(eval.currents))
        EXPECT_EQ(level, 15);
}

TEST(NeuronUnitCircuit, EnergyGrowsWithActivity)
{
    NeuronUnitParams np;
    np.count = 8;
    SpikingNeuronUnit nu(np);
    nu.calibrate(1e-6, 1.0);
    std::vector<double> quiet(8, 0.0);
    std::vector<double> busy(8, 1e-6);
    nu.step(quiet);
    const double e_quiet = nu.energy();
    nu.step(busy);
    EXPECT_GT(nu.energy(), e_quiet);
}


TEST(Sense, DividerRisesWithWallArrival)
{
    SenseCircuit sense;
    double prev = -1.0;
    for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const double v = sense.dividerVoltage(f);
        EXPECT_GT(v, prev) << "f=" << f;
        EXPECT_GT(v, 0.0);
        EXPECT_LT(v, sense.supply());
        prev = v;
    }
}

TEST(Sense, SpikeOnlyNearFullTraversal)
{
    SenseCircuit sense;
    EXPECT_FALSE(sense.spikeDetected(0.0));
    EXPECT_FALSE(sense.spikeDetected(0.3));
    EXPECT_TRUE(sense.spikeDetected(1.0));
    const double trip = sense.tripFraction();
    EXPECT_GT(trip, 0.3);
    EXPECT_LT(trip, 1.0);
    // Just below / above the trip point.
    EXPECT_FALSE(sense.spikeDetected(trip - 0.01));
    EXPECT_TRUE(sense.spikeDetected(trip + 0.01));
}

TEST(Sense, ReferenceSetsTheMargin)
{
    // A higher reference state (lower reference resistance) demands a
    // larger wall displacement before the inverter trips.
    SenseCircuit loose({}, 0.7);
    SenseCircuit tight({}, 0.3);
    EXPECT_GT(loose.tripFraction(), tight.tripFraction());
}

TEST(Sense, SaturatingOutputIsMonotoneAndClamped)
{
    SenseCircuit sense;
    EXPECT_DOUBLE_EQ(sense.saturatingOutput(0.0), 0.0);
    EXPECT_DOUBLE_EQ(sense.saturatingOutput(1.0), 1.0);
    double prev = -1.0;
    for (double f = 0.0; f <= 1.0; f += 0.1) {
        const double out = sense.saturatingOutput(f);
        EXPECT_GE(out, prev);
        prev = out;
    }
}

TEST(Sense, StaticPowerIsNanowattScale)
{
    // 0.25 V across ~tens of kOhm: the divider burns well under a
    // microwatt -- the ultra-low-power claim at the sensing interface.
    SenseCircuit sense;
    for (double f : {0.0, 0.5, 1.0}) {
        EXPECT_GT(sense.staticPower(f), 0.0);
        EXPECT_LT(sense.staticPower(f), 1e-5);
    }
}

TEST(ComponentDb, MatchesPaperTotals)
{
    const ComponentDb &db = componentDb();
    // Paper Table III: ANN core 113.8 mW, SNN core 19.66 mW.
    EXPECT_NEAR(toMw(db.corePower(Mode::ANN)), 113.8, 0.2);
    EXPECT_NEAR(toMw(db.corePower(Mode::SNN)), 19.66, 0.05);
    EXPECT_NEAR(db.chipPower(), 5.2, 1e-9);
    EXPECT_EQ(db.annCoreCount(), 14);
    EXPECT_EQ(db.snnCoreCount(), 182);
}

TEST(ComponentDb, SnnSupertileFarCheaperThanAnn)
{
    const ComponentDb &db = componentDb();
    EXPECT_GT(db.superTilePower(Mode::ANN) / db.superTilePower(Mode::SNN),
              10.0);
    EXPECT_GT(db.annDacPower() / db.snnDriverPower(), 20.0);
}

TEST(ComponentDb, GeometryConstants)
{
    const ComponentDb &db = componentDb();
    EXPECT_EQ(db.atomicSize(), 128);
    EXPECT_EQ(db.crossbarsPerCore(), 16);
    EXPECT_EQ(db.maxInCoreReceptiveField(), 2048);
    EXPECT_EQ(db.precisionBits(), 4);
}

TEST(ComponentDb, TableHasAllRows)
{
    const ComponentDb &db = componentDb();
    // 17 paper rows + 3 computed totals.
    EXPECT_EQ(db.toTable().numRows(), db.rows().size() + 3);
}

} // namespace
} // namespace nebula
