/**
 * @file
 * Unit tests for the common utilities: RNG distributions, stats
 * accounting and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace nebula {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(3.0, 0.5);
    EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, BernoulliEdges)
{
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-1.0));
        EXPECT_TRUE(rng.bernoulli(2.0));
    }
}

TEST(Rng, PoissonMean)
{
    Rng rng(29);
    for (double lambda : {0.5, 3.0, 12.0, 50.0}) {
        double sum = 0.0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            sum += rng.poisson(lambda);
        EXPECT_NEAR(sum / n, lambda, lambda * 0.05 + 0.05)
            << "lambda=" << lambda;
    }
}

TEST(Rng, PoissonZeroRate)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, UniformIntRange)
{
    Rng rng(37);
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniformInt(-3, 5);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 5);
    }
    // Degenerate range.
    EXPECT_EQ(rng.uniformInt(4, 4), 4);
}

TEST(Rng, ShufflePermutes)
{
    Rng rng(41);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
    auto sorted = v;
    rng.shuffle(v);
    EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ForkDecorrelates)
{
    Rng parent(43);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedMatchesFreshGenerator)
{
    Rng a(42);
    for (int i = 0; i < 17; ++i)
        a.next();
    a.reseed(99);
    Rng b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedDropsCachedGaussianSpare)
{
    // The Marsaglia polar method produces gaussians in pairs and caches
    // the spare. A reseed must drop that spare, or the first gaussian()
    // after reseeding would come from the *old* stream.
    Rng a(7);
    a.gaussian(); // leaves a spare cached
    a.reseed(7);

    Rng fresh(7);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.gaussian(), fresh.gaussian());
}

TEST(Rng, GaussianSpareCachePreservesStream)
{
    // Two generators on the same seed stay in lockstep regardless of
    // how their gaussian draws interleave with raw draws, because the
    // spare is consumed before any new state advance.
    Rng a(5), b(5);
    EXPECT_EQ(a.gaussian(), b.gaussian());
    EXPECT_EQ(a.gaussian(), b.gaussian()); // spare on both sides
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.gaussian(), b.gaussian());
}

TEST(Rng, CopyCarriesGaussianSpare)
{
    Rng a(11);
    a.gaussian(); // cache a spare
    Rng b = a;    // value copy, spare included
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(a.gaussian(), b.gaussian());
}

TEST(ScalarStat, Accumulates)
{
    ScalarStat s;
    s.sample(1.0);
    s.sample(3.0);
    s.sample(2.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(ScalarStat, EmptyIsZero)
{
    ScalarStat s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(ScalarStat, AddWithoutCount)
{
    ScalarStat s;
    s.add(5.0);
    s.inc();
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
    EXPECT_EQ(s.count(), 0u);
}

TEST(ScalarStat, Reset)
{
    ScalarStat s;
    s.sample(9.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_EQ(s.count(), 0u);
}

TEST(ScalarStat, MinMaxAfterReset)
{
    ScalarStat s;
    s.sample(-4.0);
    s.sample(9.0);
    s.reset();
    // A reset stat must not remember old extrema.
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    s.sample(2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(ScalarStat, MergeCombinesMoments)
{
    ScalarStat a, b;
    a.sample(1.0);
    a.sample(5.0);
    b.sample(-2.0);
    b.sample(3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.sum(), 7.0);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
    EXPECT_DOUBLE_EQ(a.mean(), 1.75);
}

TEST(ScalarStat, MergeEmptyIsNoop)
{
    ScalarStat a, empty;
    a.sample(2.0);
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.sum(), 2.0);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 2.0);

    // Merging into an empty stat copies the other side.
    ScalarStat c;
    c.merge(a);
    EXPECT_DOUBLE_EQ(c.min(), 2.0);
    EXPECT_DOUBLE_EQ(c.max(), 2.0);
    EXPECT_EQ(c.count(), 1u);

    // Two empty stats stay empty (accessors keep returning 0).
    ScalarStat d, e;
    d.merge(e);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.5);   // bin 0
    h.sample(9.5);   // bin 9
    h.sample(-1.0);  // clamps to bin 0
    h.sample(99.0);  // clamps to bin 9
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[9], 2u);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHigh(9), 10.0);
}

TEST(StatGroup, CreateOnUse)
{
    StatGroup group("test");
    EXPECT_FALSE(group.hasScalar("a"));
    group.scalar("a").inc();
    EXPECT_TRUE(group.hasScalar("a"));
    EXPECT_DOUBLE_EQ(group.scalarAt("a").sum(), 1.0);
}

TEST(StatGroup, NamesSorted)
{
    StatGroup group;
    group.scalar("zeta");
    group.scalar("alpha");
    auto names = group.scalarNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(StatGroup, TableHasAllRows)
{
    StatGroup group("g");
    group.scalar("x").sample(1);
    group.scalar("y").sample(2);
    EXPECT_EQ(group.toTable().numRows(), 2u);
}

TEST(StatGroup, MergeByName)
{
    StatGroup a("a"), b("b");
    a.scalar("latency").sample(1.0);
    b.scalar("latency").sample(3.0);
    b.scalar("spikes").add(10.0);
    a.merge(b);
    EXPECT_EQ(a.scalarAt("latency").count(), 2u);
    EXPECT_DOUBLE_EQ(a.scalarAt("latency").max(), 3.0);
    EXPECT_DOUBLE_EQ(a.scalarAt("spikes").sum(), 10.0);
    // b is untouched.
    EXPECT_EQ(b.scalarAt("latency").count(), 1u);
}

TEST(StatGroup, TableRendersEmptyStatAsZeros)
{
    StatGroup group("g");
    group.scalar("untouched"); // registered but never sampled
    std::ostringstream oss;
    group.toTable().print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("untouched"), std::string::npos);
    // min/max of an empty stat render as 0, not +/-inf.
    EXPECT_EQ(out.find("inf"), std::string::npos);
}

TEST(StatGroup, CsvRendering)
{
    StatGroup group("g");
    group.scalar("x").sample(2.0);
    group.scalar("x").sample(4.0);
    std::ostringstream oss;
    group.toTable().printCsv(oss);
    EXPECT_EQ(oss.str(),
              "stat,sum,count,mean,min,max\n"
              "x,6.0000,2,3.0000,2.0000,4.0000\n");
}

TEST(Table, RendersAllCells)
{
    Table t("demo", {"name", "value"});
    t.row().add("alpha").add(1.5, 1);
    t.row().add("beta").add(2LL);
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
    EXPECT_NE(out.find("demo"), std::string::npos);
}

TEST(Table, CsvFormat)
{
    Table t("demo", {"a", "b"});
    t.row().add("x,y").add(1LL);
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n\"x,y\",1\n");
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatRatio(7.9, 1), "7.9x");
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(toPj(1e-12), 1.0);
    EXPECT_DOUBLE_EQ(toNj(2e-9), 2.0);
    EXPECT_DOUBLE_EQ(toMw(0.005), 5.0);
    EXPECT_DOUBLE_EQ(110 * units::ns, 1.1e-7);
}

} // namespace
} // namespace nebula
