/**
 * @file
 * Tests for the synthetic dataset generators.
 */

#include <gtest/gtest.h>

#include "nn/datasets.hpp"

namespace nebula {
namespace {

TEST(Digits, ShapesAndRange)
{
    SyntheticDigits data(50, 16, 1);
    EXPECT_EQ(data.size(), 50);
    EXPECT_EQ(data.numClasses(), 10);
    EXPECT_EQ(data.channels(), 1);
    const Tensor &img = data.image(0);
    EXPECT_EQ(img.shape(), (std::vector<int>{1, 16, 16}));
    for (long long i = 0; i < img.size(); ++i) {
        ASSERT_GE(img[i], 0.0f);
        ASSERT_LE(img[i], 1.0f);
    }
}

TEST(Digits, DeterministicInSeed)
{
    SyntheticDigits a(20, 16, 7), b(20, 16, 7);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(a.label(i), b.label(i));
        for (long long k = 0; k < a.image(i).size(); ++k)
            ASSERT_EQ(a.image(i)[k], b.image(i)[k]);
    }
}

TEST(Digits, DifferentSeedsDiffer)
{
    SyntheticDigits a(20, 16, 1), b(20, 16, 2);
    int identical = 0;
    for (int i = 0; i < 20; ++i) {
        bool same = a.label(i) == b.label(i);
        if (same) {
            for (long long k = 0; k < a.image(i).size() && same; ++k)
                same = (a.image(i)[k] == b.image(i)[k]);
            identical += same;
        }
    }
    EXPECT_LT(identical, 3);
}

TEST(Digits, AllClassesPresent)
{
    SyntheticDigits data(500, 16, 3);
    std::vector<int> histogram(10, 0);
    for (int i = 0; i < data.size(); ++i)
        ++histogram[static_cast<size_t>(data.label(i))];
    for (int c = 0; c < 10; ++c)
        EXPECT_GT(histogram[static_cast<size_t>(c)], 10) << "class " << c;
}

TEST(Digits, GlyphsHaveInk)
{
    SyntheticDigits data(20, 16, 4, /*noise=*/0.0);
    for (int i = 0; i < data.size(); ++i) {
        EXPECT_GT(data.image(i).sum(), 5.0f) << "image " << i;
    }
}

TEST(Digits, ClassesAreVisuallyDistinct)
{
    // Noise-free class means should correlate with themselves more than
    // with other classes (sanity of the generator's signal).
    SyntheticDigits data(400, 16, 5, 0.0);
    std::vector<Tensor> mean(10, Tensor({1, 16, 16}));
    std::vector<int> count(10, 0);
    for (int i = 0; i < data.size(); ++i) {
        mean[static_cast<size_t>(data.label(i))].add(
            data.image(i).reshaped({1, 16, 16}));
        ++count[static_cast<size_t>(data.label(i))];
    }
    for (int c = 0; c < 10; ++c)
        mean[static_cast<size_t>(c)].scale(
            1.0f / std::max(count[static_cast<size_t>(c)], 1));
    // Distinct digits should not be near-identical.
    EXPECT_LT(correlation(mean[0], mean[1]), 0.95);
    EXPECT_LT(correlation(mean[3], mean[7]), 0.95);
}

TEST(Textures, ShapesAndClasses)
{
    SyntheticTextures data(40, 10, 32, 3, 1);
    EXPECT_EQ(data.numClasses(), 10);
    EXPECT_EQ(data.image(0).shape(), (std::vector<int>{3, 32, 32}));
}

TEST(Textures, SupportsHundredClasses)
{
    SyntheticTextures data(300, 100, 16, 3, 2);
    int max_label = 0;
    for (int i = 0; i < data.size(); ++i)
        max_label = std::max(max_label, data.label(i));
    EXPECT_GT(max_label, 80);
}

TEST(Textures, ValuesInRange)
{
    SyntheticTextures data(10, 10, 32, 3, 3);
    for (int i = 0; i < data.size(); ++i)
        for (long long k = 0; k < data.image(i).size(); ++k) {
            ASSERT_GE(data.image(i)[k], 0.0f);
            ASSERT_LE(data.image(i)[k], 1.0f);
        }
}

TEST(Svhn, ShapesAndRange)
{
    SyntheticSvhn data(30, 32, 1);
    EXPECT_EQ(data.numClasses(), 10);
    EXPECT_EQ(data.channels(), 3);
    EXPECT_EQ(data.image(0).shape(), (std::vector<int>{3, 32, 32}));
    for (long long k = 0; k < data.image(0).size(); ++k) {
        ASSERT_GE(data.image(0)[k], 0.0f);
        ASSERT_LE(data.image(0)[k], 1.0f);
    }
}

TEST(Dataset, BatchAssembly)
{
    SyntheticDigits data(10, 12, 6);
    Tensor batch = data.batchImages({0, 3, 7});
    EXPECT_EQ(batch.shape(), (std::vector<int>{3, 1, 12, 12}));
    const auto labels = data.batchLabels({0, 3, 7});
    EXPECT_EQ(labels.size(), 3u);
    // Row 1 of the batch must equal image 3.
    const Tensor &img = data.image(3);
    for (long long k = 0; k < img.size(); ++k)
        ASSERT_EQ(batch[img.size() + k], img[k]);
}

TEST(Dataset, FirstImagesClamp)
{
    SyntheticDigits data(5, 12, 7);
    Tensor batch = data.firstImages(100);
    EXPECT_EQ(batch.dim(0), 5);
    EXPECT_EQ(data.firstLabels(100).size(), 5u);
}

} // namespace
} // namespace nebula
