/**
 * @file
 * Unit and property tests for the DW-MTJ device models: domain-wall
 * dynamics, MTJ conductance, synapse programming and neuron behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "device/domain_wall.hpp"
#include "device/mtj.hpp"
#include "device/neuron_device.hpp"
#include "device/synapse_device.hpp"
#include "device/variability.hpp"

namespace nebula {
namespace {

using namespace units;

TEST(DomainWall, DefaultsHaveSixteenStates)
{
    DwTrackParams p;
    EXPECT_EQ(p.numStates(), 16);
}

TEST(DomainWall, NoMotionBelowCriticalCurrent)
{
    DwTrackParams p;
    DomainWallTrack track(p);
    const double subcritical =
        0.9 * p.criticalDensity * p.hmCrossSection();
    track.applyCurrent(subcritical, 110 * ns);
    EXPECT_DOUBLE_EQ(track.position(), 0.0);
}

TEST(DomainWall, DisplacementLinearInOverdrive)
{
    // Fig. 1(b): displacement proportional to programming current above
    // the critical current.
    DwTrackParams p;
    const double i1 = 2.0 * p.criticalDensity * p.hmCrossSection();
    const double i2 = 3.0 * p.criticalDensity * p.hmCrossSection();

    DomainWallTrack a(p), b(p);
    const double d1 = a.applyCurrent(i1, 10 * ns);
    const double d2 = b.applyCurrent(i2, 10 * ns);
    // Overdrive (J - Jc) doubles from i1 to i2.
    EXPECT_NEAR(d2 / d1, 2.0, 1e-9);
}

TEST(DomainWall, VelocitySaturates)
{
    DwTrackParams p;
    const double huge = 1e4 * p.criticalDensity;
    EXPECT_DOUBLE_EQ(std::abs(DomainWallTrack(p).velocityAt(huge)),
                     p.saturationVelocity);
}

TEST(DomainWall, PositionClampsToTrack)
{
    DwTrackParams p;
    DomainWallTrack track(p);
    const double big = 100.0 * p.criticalDensity * p.hmCrossSection();
    track.applyCurrent(big, 1e-3);
    EXPECT_DOUBLE_EQ(track.position(), p.length);
    track.applyCurrent(-big, 1e-3);
    EXPECT_DOUBLE_EQ(track.position(), 0.0);
}

TEST(DomainWall, NegativeCurrentReversesDirection)
{
    DwTrackParams p;
    DomainWallTrack track(p);
    track.setPosition(p.length / 2);
    const double i = -2.0 * p.criticalDensity * p.hmCrossSection();
    const double d = track.applyCurrent(i, 10 * ns);
    EXPECT_LT(d, 0.0);
}

TEST(DomainWall, PinnedPositionSnapsToGrid)
{
    DwTrackParams p;
    DomainWallTrack track(p);
    const double pitch = p.pinPitch;
    track.setPosition(1.4 * pitch);
    EXPECT_NEAR(track.pinnedPosition(), pitch, 1e-15);
    EXPECT_EQ(track.stateIndex(), 1);
    track.setPosition(1.6 * pitch);
    EXPECT_NEAR(track.pinnedPosition(), 2 * pitch, 1e-15);
    EXPECT_EQ(track.stateIndex(), 2);
}

TEST(DomainWall, StateIndexSpansAllStates)
{
    DwTrackParams p;
    DomainWallTrack track(p);
    track.setPosition(0.0);
    EXPECT_EQ(track.stateIndex(), 0);
    track.setPosition(p.length);
    EXPECT_EQ(track.stateIndex(), p.numStates() - 1);
}

TEST(Mtj, ConductanceEndpoints)
{
    MtjParams p;
    MtjStack mtj(p);
    EXPECT_NEAR(mtj.conductanceAt(1.0), mtj.conductanceP(), 1e-18);
    EXPECT_NEAR(mtj.conductanceAt(0.0), mtj.conductanceAp(), 1e-18);
    EXPECT_NEAR(mtj.conductanceP() / mtj.conductanceAp(), p.apOverP, 1e-9);
}

TEST(Mtj, ConductanceMonotonic)
{
    MtjStack mtj((MtjParams()));
    double prev = -1.0;
    for (int i = 0; i <= 16; ++i) {
        const double g = mtj.conductanceAt(i / 16.0);
        EXPECT_GT(g, prev);
        prev = g;
    }
}

TEST(Mtj, OxideThicknessRaisesResistance)
{
    MtjParams p;
    const double ra_thin = MtjStack::raForThickness(p, 0.9 * nm);
    const double ra_nom = MtjStack::raForThickness(p, p.oxideThickness);
    const double ra_thick = MtjStack::raForThickness(p, 1.2 * nm);
    EXPECT_LT(ra_thin, ra_nom);
    EXPECT_GT(ra_thick, ra_nom);
    EXPECT_NEAR(ra_nom, p.raProductP, 1e-18);
}

TEST(Mtj, ResistanceIsReciprocal)
{
    MtjStack mtj((MtjParams()));
    for (double f : {0.0, 0.3, 0.7, 1.0})
        EXPECT_NEAR(mtj.resistanceAt(f) * mtj.conductanceAt(f), 1.0, 1e-12);
}

class SynapseLevels : public ::testing::TestWithParam<int>
{
};

TEST_P(SynapseLevels, ProgramsEveryLevelExactly)
{
    const int levels = GetParam();
    SynapseDeviceParams p;
    for (int level = 0; level < levels; ++level) {
        SynapseDevice dev(p);
        dev.program(level, levels);
        const double expected =
            static_cast<double>(level) / (levels - 1);
        EXPECT_NEAR(dev.normalizedWeight(), expected, 0.5 / (levels - 1))
            << "level " << level << "/" << levels;
    }
}

INSTANTIATE_TEST_SUITE_P(AllResolutions, SynapseLevels,
                         ::testing::Values(2, 4, 8, 16));

TEST(Synapse, ConductanceMonotonicInLevel)
{
    SynapseDeviceParams p;
    double prev = -1.0;
    for (int level = 0; level < 16; ++level) {
        SynapseDevice dev(p);
        dev.program(level, 16);
        EXPECT_GT(dev.conductance(), prev) << "level " << level;
        prev = dev.conductance();
    }
}

TEST(Synapse, ReprogramMovesBothDirections)
{
    SynapseDevice dev;
    dev.program(15, 16);
    const double high = dev.conductance();
    dev.program(3, 16);
    const double low = dev.conductance();
    EXPECT_LT(low, high);
    dev.program(12, 16);
    EXPECT_GT(dev.conductance(), low);
}

TEST(Synapse, ProgramEnergyIsFemtojouleScale)
{
    // Paper Sec. II-B2: DW-MTJ programming energy ~100 fJ, orders below
    // the pJ-scale PCM/RRAM writes.
    SynapseDevice dev;
    dev.program(15, 16);
    EXPECT_GT(dev.programEnergy(), 1 * fJ);
    EXPECT_LT(dev.programEnergy(), 1000 * fJ);
}

TEST(Synapse, ReadDoesNotDisturbState)
{
    SynapseDevice dev;
    dev.program(9, 16);
    const double g = dev.conductance();
    for (int i = 0; i < 100; ++i)
        dev.readCurrent(0.25);
    EXPECT_DOUBLE_EQ(dev.conductance(), g);
}

TEST(Synapse, ReadCurrentScalesWithVoltage)
{
    SynapseDevice dev;
    dev.program(8, 16);
    EXPECT_NEAR(dev.readCurrent(0.5), 2.0 * dev.readCurrent(0.25), 1e-15);
}

TEST(SpikingNeuron, IntegratesAndFires)
{
    NeuronDeviceParams p;
    SpikingNeuronDevice neuron(p);
    const double window = 110 * ns;
    // Threshold current crosses the full track in one window.
    const double i_th = neuron.thresholdCurrent(window);

    // Half the threshold drive: no spike after one step, spike by three.
    const double bias =
        p.track.criticalDensity * p.track.hmCrossSection();
    const double half = bias + 0.5 * (i_th - bias);
    EXPECT_FALSE(neuron.integrate(half, window));
    EXPECT_GT(neuron.membraneFraction(), 0.3);
    bool fired = neuron.integrate(half, window);
    if (!fired)
        fired = neuron.integrate(half, window);
    EXPECT_TRUE(fired);
    EXPECT_EQ(neuron.spikeCount(), 1);
    // Membrane reset after the spike.
    EXPECT_DOUBLE_EQ(neuron.membraneFraction(), 0.0);
}

TEST(SpikingNeuron, FullDriveFiresEveryStep)
{
    SpikingNeuronDevice neuron;
    const double window = 110 * ns;
    const double i_th = 1.01 * neuron.thresholdCurrent(window);
    for (int t = 0; t < 5; ++t)
        EXPECT_TRUE(neuron.integrate(i_th, window)) << "step " << t;
    EXPECT_EQ(neuron.spikeCount(), 5);
}

TEST(SpikingNeuron, MembranePersistsAcrossQuietSteps)
{
    // The DW position *is* the membrane potential: with zero input it
    // must hold its value with no refresh (the paper's key SRAM saving).
    NeuronDeviceParams p;
    SpikingNeuronDevice neuron(p);
    const double window = 110 * ns;
    const double i_th = neuron.thresholdCurrent(window);
    neuron.integrate(0.6 * i_th, window);
    const double held = neuron.membraneFraction();
    for (int t = 0; t < 10; ++t)
        neuron.integrate(0.0, window);
    EXPECT_DOUBLE_EQ(neuron.membraneFraction(), held);
}

TEST(SpikingNeuron, InhibitoryCurrentLowersMembrane)
{
    SpikingNeuronDevice neuron;
    const double window = 110 * ns;
    const double i_th = neuron.thresholdCurrent(window);
    neuron.integrate(0.8 * i_th, window);
    const double before = neuron.membraneFraction();
    neuron.integrate(-0.5 * i_th, window);
    EXPECT_LT(neuron.membraneFraction(), before);
    EXPECT_GE(neuron.membraneFraction(), 0.0);
}

TEST(SpikingNeuron, EnergyAccumulates)
{
    SpikingNeuronDevice neuron;
    const double window = 110 * ns;
    const double i_th = neuron.thresholdCurrent(window);
    EXPECT_DOUBLE_EQ(neuron.energy(), 0.0);
    neuron.integrate(i_th, window);
    const double e1 = neuron.energy();
    EXPECT_GT(e1, 0.0);
    neuron.integrate(i_th, window);
    EXPECT_GT(neuron.energy(), e1);
    neuron.clearStats();
    EXPECT_DOUBLE_EQ(neuron.energy(), 0.0);
    EXPECT_EQ(neuron.spikeCount(), 0);
}

TEST(ReluNeuron, OutputProportionalToDrive)
{
    ReluNeuronDevice neuron;
    const double window = 110 * ns;
    const double i_th = neuron.thresholdCurrent(window);
    const double bias = neuron.params().track.criticalDensity *
                        neuron.params().track.hmCrossSection();

    // Drive producing half-track displacement -> mid-level output.
    const double half = bias + 0.5 * (i_th - bias);
    const int level = neuron.evaluate(half, window, 16);
    EXPECT_NEAR(level, 8, 1);
}

TEST(ReluNeuron, SaturatesAtTop)
{
    ReluNeuronDevice neuron;
    const double window = 110 * ns;
    const int level =
        neuron.evaluate(5.0 * neuron.thresholdCurrent(window), window, 16);
    EXPECT_EQ(level, 15);
}

TEST(ReluNeuron, NegativeDriveGivesZero)
{
    ReluNeuronDevice neuron;
    const double window = 110 * ns;
    const int level =
        neuron.evaluate(-neuron.thresholdCurrent(window), window, 16);
    EXPECT_EQ(level, 0);
}

TEST(ReluNeuron, ResetBetweenEvaluations)
{
    // Unlike the spiking neuron, the ANN neuron is stateless: two equal
    // evaluations give equal outputs.
    ReluNeuronDevice neuron;
    const double window = 110 * ns;
    const double i = 0.7 * neuron.thresholdCurrent(window);
    const int a = neuron.evaluate(i, window, 16);
    const int b = neuron.evaluate(i, window, 16);
    EXPECT_EQ(a, b);
}

TEST(Variability, ZeroSigmaIsIdentity)
{
    VariabilityModel v(0.0);
    for (int i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(v.sampleFactor(), 1.0);
}

TEST(Variability, FactorsCenteredOnOne)
{
    VariabilityModel v(0.1, 99);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double f = v.sampleFactor();
        EXPECT_GT(f, 0.0);
        sum += f;
    }
    EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Variability, PerturbPreservesSize)
{
    VariabilityModel v(0.1, 5);
    std::vector<float> w(100, 1.0f);
    v.perturb(w);
    EXPECT_EQ(w.size(), 100u);
    bool changed = false;
    for (float x : w)
        changed |= (x != 1.0f);
    EXPECT_TRUE(changed);
}

} // namespace
} // namespace nebula
