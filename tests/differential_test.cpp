/**
 * @file
 * Differential tests pinning the crossbar fast evaluation paths (cached
 * ideal, sparse spike-driven, batched, parasitic-with-workspace) to the
 * naive reference model in src/testing. Each path sweeps hundreds of
 * seeded random cases over geometry, spare columns, fault maps,
 * mitigations and input sparsity; a mismatch is shrunk to a minimal
 * reproducer before being reported.
 */

#include <gtest/gtest.h>

#include <functional>

#include "testing/reference_crossbar.hpp"

namespace nebula {
namespace testing {
namespace {

constexpr double kCycle = 110e-9;

/** Run @p cases seeded cases; shrink and report the first failure. */
void
runCases(int cases, uint64_t seed_base,
         const std::function<CaseConfig(uint64_t)> &generate,
         const CasePredicate &mismatch)
{
    for (int k = 0; k < cases; ++k) {
        const uint64_t seed = seed_base + static_cast<uint64_t>(k);
        const CaseConfig config = generate(seed);
        const std::string detail = mismatch(config);
        if (detail.empty())
            continue;
        std::string min_detail;
        const CaseConfig minimal = shrinkCase(config, mismatch, &min_detail);
        FAIL() << "differential mismatch: " << detail
               << "\n  original: " << config.describe()
               << "\n  minimal:  " << minimal.describe()
               << "\n  minimal mismatch: " << min_detail;
    }
}

TEST(Differential, IdealMatchesReferenceBitExact)
{
    runCases(
        600, 1000, randomCase, [](const CaseConfig &config) {
            BuiltCase built = buildCase(config);
            const CrossbarEval got =
                built.xbar->evaluateIdeal(built.inputs, kCycle);
            const CrossbarEval want =
                referenceIdeal(*built.xbar, built.inputs, kCycle);
            return compareEval(got, want, 0.0);
        });
}

TEST(Differential, ScalarBaselineMatchesReferenceBitExact)
{
    // The fastEval == false loops are the committed pre-optimization
    // baseline the benchmarks compare against; keep them honest too.
    runCases(
        200, 2000, randomCase, [](const CaseConfig &config) {
            BuiltCase built = buildCase(config, /*fast_eval=*/false);
            const CrossbarEval got =
                built.xbar->evaluateIdeal(built.inputs, kCycle);
            const CrossbarEval want =
                referenceIdeal(*built.xbar, built.inputs, kCycle);
            return compareEval(got, want, 0.0);
        });
}

TEST(Differential, SparseMatchesReferenceBitExact)
{
    // Spike-driven path: active-row list against the densified naive
    // evaluation, across sparsity levels from near-dense to one spike.
    runCases(
        600, 3000,
        [](uint64_t seed) {
            CaseConfig config = randomCase(seed);
            config.snnMode = true;
            return config;
        },
        [](const CaseConfig &config) {
            BuiltCase built = buildCase(config);
            const CrossbarEval got =
                built.xbar->evaluateSparse(built.active, kCycle);
            const CrossbarEval want =
                referenceIdeal(*built.xbar, built.inputs, kCycle);
            std::string detail = compareEval(got, want, 0.0);
            if (!detail.empty())
                return "sparse vs reference: " + detail;
            // And against the dense fast path, which must be identical.
            const CrossbarEval dense =
                built.xbar->evaluateIdeal(built.inputs, kCycle);
            detail = compareEval(got, dense, 0.0);
            if (!detail.empty())
                return "sparse vs dense fast path: " + detail;
            return std::string();
        });
}

TEST(Differential, BatchMatchesSingleEvalBitExact)
{
    runCases(
        250, 4000, randomCase, [](const CaseConfig &config) {
            BuiltCase built = buildCase(config);
            Rng rng(config.seed ^ 0xba7c4ull);
            const int rows = built.xbar->rows();
            const int cols = built.xbar->cols();
            const int batch = rng.uniformInt(2, 6);
            std::vector<double> windows(
                static_cast<size_t>(batch) * rows);
            for (auto &v : windows)
                v = rng.bernoulli(config.sparsity)
                        ? 0.0
                        : rng.uniform(0.0, 1.0);

            const CrossbarBatchEval got =
                built.xbar->evaluateIdealBatch(windows, batch, kCycle);
            CrossbarEval want_all;
            want_all.currents.reserve(static_cast<size_t>(batch) * cols);
            std::vector<double> window(static_cast<size_t>(rows));
            for (int b = 0; b < batch; ++b) {
                std::copy_n(windows.begin() +
                                static_cast<size_t>(b) * rows,
                            rows, window.begin());
                const CrossbarEval one =
                    built.xbar->evaluateIdeal(window, kCycle);
                want_all.currents.insert(want_all.currents.end(),
                                         one.currents.begin(),
                                         one.currents.end());
                want_all.energy += one.energy;
            }
            CrossbarEval got_flat;
            got_flat.currents = got.currents;
            got_flat.energy = got.energy;
            return compareEval(got_flat, want_all, 0.0);
        });
}

TEST(Differential, ParasiticMatchesReferenceWithinTolerance)
{
    // Full nodal solves stay small so every case converges well inside
    // the iteration budget; the workspace-reusing production solver
    // must agree with the fresh-storage reference to solver precision.
    runCases(
        500, 5000,
        [](uint64_t seed) {
            CaseConfig config = randomCase(seed);
            Rng rng(seed ^ 0x9a4aull);
            config.rows = rng.uniformInt(1, 10);
            config.cols = rng.uniformInt(1, 8);
            config.spareCols = std::min(config.spareCols, 2);
            config.repair = config.repair && config.spareCols > 0;
            return config;
        },
        [](const CaseConfig &config) {
            BuiltCase built = buildCase(config);
            const CrossbarEval got =
                built.xbar->evaluateParasitic(built.inputs, kCycle);
            const CrossbarEval want = referenceParasitic(
                *built.xbar, built.inputs, kCycle);
            return compareEval(got, want, 1e-8);
        });
}

TEST(Differential, ParasiticWorkspaceReuseIsRepeatable)
{
    // Back-to-back solves share the cached workspace; any residue from
    // the first solve leaking into the second would show here.
    runCases(
        60, 6000,
        [](uint64_t seed) {
            CaseConfig config = randomCase(seed);
            Rng rng(seed ^ 0x9a4bull);
            config.rows = rng.uniformInt(1, 10);
            config.cols = rng.uniformInt(1, 8);
            return config;
        },
        [](const CaseConfig &config) {
            BuiltCase built = buildCase(config);
            const CrossbarEval first =
                built.xbar->evaluateParasitic(built.inputs, kCycle);
            const CrossbarEval second =
                built.xbar->evaluateParasitic(built.inputs, kCycle);
            return compareEval(second, first, 0.0);
        });
}

} // namespace
} // namespace testing
} // namespace nebula
