/**
 * @file
 * Energy/power model tests: accounting identities, mode asymmetries and
 * the headline paper ratios (who wins, roughly by how much).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/energy_model.hpp"
#include "arch/pipeline.hpp"
#include "nn/models.hpp"

namespace nebula {
namespace {

NetworkMapping
mapModel(Network &net, int channels, int spatial)
{
    Tensor x({1, channels, spatial, spatial});
    net.forward(x);
    return LayerMapper().map(net);
}

TEST(ActivityProfile, UniformAndDecaying)
{
    auto u = ActivityProfile::uniform(5, 0.3);
    ASSERT_EQ(u.inputActivity.size(), 5u);
    for (double a : u.inputActivity)
        EXPECT_DOUBLE_EQ(a, 0.3);

    auto d = ActivityProfile::decaying(10, 0.25, 0.8, 0.02);
    EXPECT_DOUBLE_EQ(d.inputActivity[0], 0.25);
    for (size_t i = 1; i < d.inputActivity.size(); ++i)
        EXPECT_LE(d.inputActivity[i], d.inputActivity[i - 1]);
    EXPECT_GE(d.inputActivity.back(), 0.02);
}

TEST(EnergyModel, ComponentsSumToTotal)
{
    Network net = buildVgg13(32, 3, 10, 0.5f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto result = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));

    double component_sum = 0.0;
    for (const auto &kv : result.byComponent)
        component_sum += kv.second;
    EXPECT_NEAR(component_sum, result.totalEnergy,
                1e-9 * result.totalEnergy);

    double layer_sum = 0.0;
    for (const auto &layer : result.layers)
        layer_sum += layer.energy;
    EXPECT_NEAR(layer_sum, result.totalEnergy, 1e-9 * result.totalEnergy);
}

TEST(EnergyModel, AvgPowerIsEnergyOverLatency)
{
    Network net = buildSvhnNet(32, 3, 10, 0.5f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto result = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    EXPECT_NEAR(result.avgPower, result.totalEnergy / result.latency,
                1e-12);
    EXPECT_GT(result.latency, 0.0);
}

TEST(EnergyModel, SnnEnergyScalesWithTimesteps)
{
    Network net = buildSvhnNet(32, 3, 10, 0.5f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto act =
        ActivityProfile::uniform(mapping.layers.size(), 0.1);
    const auto e100 = model.evaluateSnn(mapping, act, 100);
    const auto e200 = model.evaluateSnn(mapping, act, 200);
    EXPECT_NEAR(e200.totalEnergy / e100.totalEnergy, 2.0, 0.01);
}

TEST(EnergyModel, SnnEnergyGrowsWithActivity)
{
    Network net = buildSvhnNet(32, 3, 10, 0.5f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto quiet = model.evaluateSnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.02),
        100);
    const auto busy = model.evaluateSnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.4),
        100);
    EXPECT_GT(busy.totalEnergy, quiet.totalEnergy);
}

TEST(EnergyModel, SnnModeFarLowerPowerThanAnn)
{
    // Paper Sec. VI-C1: SNN mode is ~6.25-10x more power-efficient.
    Network net = buildVgg13(32, 3, 10, 1.0f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto ann = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    const auto snn = model.evaluateSnn(
        mapping, ActivityProfile::decaying(mapping.layers.size()), 300);
    const double ratio = ann.avgPower / snn.avgPower;
    EXPECT_GT(ratio, 5.0);
    EXPECT_LT(ratio, 25.0);
}

TEST(EnergyModel, SnnModeHigherEnergyThanAnn)
{
    // Distributing computation over T timesteps costs energy
    // (paper Fig. 17): SNN inference energy exceeds ANN inference
    // energy at the benchmark timestep counts.
    Network net = buildSvhnNet(32, 3, 10, 1.0f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto ann = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    const auto snn = model.evaluateSnn(
        mapping, ActivityProfile::decaying(mapping.layers.size()), 100);
    const double ratio = snn.totalEnergy / ann.totalEnergy;
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 30.0);
}

TEST(EnergyModel, PeakPowerAnnFarAboveSnn)
{
    // Paper Fig. 14: layer-wise ANN peak power is an order of magnitude
    // (up to ~50x) above SNN.
    Network net = buildVgg13(32, 3, 10, 1.0f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto ann = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    const auto snn = model.evaluateSnn(
        mapping, ActivityProfile::decaying(mapping.layers.size()), 300);
    double max_ratio = 0.0;
    for (size_t i = 0; i < ann.layers.size(); ++i)
        max_ratio = std::max(max_ratio, ann.layers[i].peakPower /
                                            snn.layers[i].peakPower);
    EXPECT_GT(max_ratio, 20.0);
}

TEST(EnergyModel, AdcOnlyChargedWhenSpilled)
{
    Network net = buildSvhnNet(32, 3, 10, 0.25f, 1); // small: no spill
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto result = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    for (size_t i = 0; i < mapping.layers.size(); ++i) {
        if (!mapping.layers[i].needsAdc)
            EXPECT_DOUBLE_EQ(result.layers[i].byComponent.at("adc"), 0.0)
                << mapping.layers[i].name;
    }
}

TEST(EnergyModel, HybridBetweenSnnAndAnn)
{
    // Paper Fig. 17: hybrid energy sits between pure SNN and pure ANN.
    Network net = buildSvhnNet(32, 3, 10, 1.0f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto act = ActivityProfile::decaying(mapping.layers.size());
    const int T = 100;

    const auto snn = model.evaluateSnn(mapping, act, T);
    const auto ann = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    // Hybrid models reach SNN accuracy in fewer timesteps (paper
    // Table II: e.g. SVHN Hyb-1 at t=80 matches the t=100 SNN), so the
    // energy comparison is at the iso-accuracy timestep count.
    const int split = static_cast<int>(mapping.layers.size()) - 2;
    const auto hybrid =
        model.evaluateHybrid(mapping, act, split, T * 8 / 10, 4096,
                             100000);

    EXPECT_LT(hybrid.totalEnergy, snn.totalEnergy);
    EXPECT_GT(hybrid.totalEnergy, ann.totalEnergy);
    // And hybrid power between ANN (highest) and SNN (lowest).
    EXPECT_GT(hybrid.avgPower, snn.avgPower);
    EXPECT_LT(hybrid.avgPower, ann.avgPower);
}

TEST(EnergyModel, HybridPowerGrowsWithAnnLayers)
{
    // Paper Sec. VI-C3: adding ANN layers to the hybrid raises power.
    Network net = buildVgg13(32, 3, 10, 1.0f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto act = ActivityProfile::decaying(mapping.layers.size());
    const int n = static_cast<int>(mapping.layers.size());

    const auto hyb1 =
        model.evaluateHybrid(mapping, act, n - 1, 250, 512, 10000);
    const auto hyb3 =
        model.evaluateHybrid(mapping, act, n - 3, 250, 512, 10000);
    EXPECT_GT(hyb3.avgPower, hyb1.avgPower);
}

TEST(EnergyModel, ComponentShareHelper)
{
    Network net = buildSvhnNet(32, 3, 10, 0.5f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto result = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    double share_sum = 0.0;
    for (const char *name : {"driver/dac", "crossbar", "neuron", "sram",
                             "edram", "adc", "ru", "noc"})
        share_sum += result.componentShare(name);
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(result.componentShare("nonexistent"), 0.0);
}

TEST(EnergyModel, AnnCrossbarAndDacDominate)
{
    // Paper Fig. 15b: in ANN mode crossbars + DACs dominate (~65%).
    Network net = buildVgg13(32, 3, 10, 1.0f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto result = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    const double share = result.componentShare("crossbar") +
                         result.componentShare("driver/dac");
    EXPECT_GT(share, 0.35);
}

TEST(EnergyModel, SnnMemoryShareLargerThanAnn)
{
    // Paper Fig. 15a: SRAM/eDRAM share grows in SNN mode.
    Network net = buildVgg13(32, 3, 10, 1.0f, 1);
    const auto mapping = mapModel(net, 3, 32);
    EnergyModel model;
    const auto ann = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    const auto snn = model.evaluateSnn(
        mapping, ActivityProfile::decaying(mapping.layers.size()), 300);
    const double ann_mem =
        ann.componentShare("sram") + ann.componentShare("edram");
    const double snn_mem =
        snn.componentShare("sram") + snn.componentShare("edram");
    EXPECT_GT(snn_mem, ann_mem);
}

TEST(Pipeline, StageCounts)
{
    Network net = buildVgg13(32, 3, 10, 1.0f, 1);
    Tensor x({1, 3, 32, 32});
    net.forward(x);
    const auto mapping = LayerMapper().map(net);
    PipelineModel pipeline;
    for (const auto &layer : mapping.layers) {
        const int stages = pipeline.stagesFor(layer);
        if (layer.needsAdc)
            EXPECT_GT(stages, 3) << layer.name;
        else
            EXPECT_EQ(stages, 3) << layer.name;
        EXPECT_EQ(pipeline.layerLatencyCycles(layer),
                  stages + layer.positions - 1);
    }
}

TEST(Pipeline, SnnLatencyScalesWithTimesteps)
{
    Network net = buildSvhnNet(32, 3, 10, 0.25f, 1);
    Tensor x({1, 3, 32, 32});
    net.forward(x);
    const auto mapping = LayerMapper().map(net);
    PipelineModel pipeline;
    const double t1 = pipeline.networkLatency(mapping, 1);
    const double t100 = pipeline.networkLatency(mapping, 100);
    EXPECT_NEAR(t100 / t1, 100.0, 1e-9);
    EXPECT_GT(pipeline.throughput(mapping, 1), 0.0);
}

} // namespace
} // namespace nebula
