/**
 * @file
 * Fast-path state-management tests: the crossbar EvalCache must never
 * serve stale derived state after programming, fault injection, or
 * mitigation-driven column remapping, and the chip / functional SNN
 * backends must consume identical per-request encoder seed streams.
 */

#include <gtest/gtest.h>

#include "arch/chip.hpp"
#include "nn/models.hpp"
#include "reliability/campaign.hpp"
#include "runtime/request.hpp"
#include "snn/snn_sim.hpp"
#include "testing/reference_crossbar.hpp"

namespace nebula {
namespace testing {
namespace {

constexpr double kCycle = 110e-9;

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    if (a.size() != b.size())
        return false;
    for (long long i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

/** Random weights in [-1, 1] for a rows x cols array. */
std::vector<float>
randomWeights(int rows, int cols, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> w(static_cast<size_t>(rows) * cols);
    for (auto &v : w)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return w;
}

std::vector<double>
rampInputs(int rows)
{
    std::vector<double> inputs(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i)
        inputs[static_cast<size_t>(i)] =
            0.1 + 0.8 * static_cast<double>(i) / std::max(rows - 1, 1);
    return inputs;
}

TEST(CrossbarCache, FaultInjectionAfterEvalIsNotStale)
{
    CrossbarParams params;
    params.rows = 16;
    params.cols = 8;
    CrossbarArray xbar(params);
    xbar.programWeights(randomWeights(16, 8, 11));

    const auto inputs = rampInputs(16);
    // First evaluation builds the cache.
    const CrossbarEval before = xbar.evaluateIdeal(inputs, kCycle);
    EXPECT_TRUE(compareEval(before, referenceIdeal(xbar, inputs, kCycle),
                            0.0)
                    .empty());

    // Break a column and a row *after* the cache was built. The open
    // lines change what evaluation reads without any reprogramming.
    FaultMap map(16, 8);
    map.setColOpen(3);
    map.setRowOpen(5);
    xbar.injectFaults(std::move(map));

    const CrossbarEval after = xbar.evaluateIdeal(inputs, kCycle);
    EXPECT_TRUE(compareEval(after, referenceIdeal(xbar, inputs, kCycle),
                            0.0)
                    .empty())
        << "cached conductances served after fault injection";
    EXPECT_EQ(after.currents[3], 0.0);
    EXPECT_NE(before.currents[3], after.currents[3]);

    // The sparse path reads the same cache.
    SpikeVector all_rows;
    for (int i = 0; i < 16; ++i)
        all_rows.push_back(i);
    const CrossbarEval sparse = xbar.evaluateSparse(all_rows, kCycle);
    const std::vector<double> ones(16, 1.0);
    EXPECT_TRUE(
        compareEval(sparse, referenceIdeal(xbar, ones, kCycle), 0.0)
            .empty());
}

TEST(CrossbarCache, ReprogramAfterEvalIsNotStale)
{
    CrossbarParams params;
    params.rows = 12;
    params.cols = 6;
    CrossbarArray xbar(params);
    const auto inputs = rampInputs(12);

    xbar.programWeights(randomWeights(12, 6, 21));
    const CrossbarEval first = xbar.evaluateIdeal(inputs, kCycle);

    xbar.programWeights(randomWeights(12, 6, 22));
    const CrossbarEval second = xbar.evaluateIdeal(inputs, kCycle);

    EXPECT_TRUE(compareEval(second, referenceIdeal(xbar, inputs, kCycle),
                            0.0)
                    .empty())
        << "cached conductances served after reprogramming";
    EXPECT_FALSE(compareEval(first, second, 0.0).empty())
        << "different weights should change the currents";
}

TEST(CrossbarCache, MitigatedProgramRemapsCacheView)
{
    // Write-verify + spare-column repair: programming remaps a broken
    // column onto a spare, so the cached logical view must follow the
    // new remap table, not the one from the previous build.
    CrossbarParams params;
    params.rows = 16;
    params.cols = 8;
    params.spareCols = 2;
    CrossbarArray xbar(params);
    const auto inputs = rampInputs(16);
    const auto weights = randomWeights(16, 8, 31);

    ProgrammingConfig clean;
    clean.writeVerify.enabled = true;
    xbar.program(weights, clean);
    const CrossbarEval before = xbar.evaluateIdeal(inputs, kCycle);
    EXPECT_TRUE(compareEval(before, referenceIdeal(xbar, inputs, kCycle),
                            0.0)
                    .empty());
    EXPECT_EQ(xbar.sparesUsed(), 0);

    FaultMap map(16, 8 + 2);
    map.setColOpen(2); // logical column 2 broken -> repairable
    xbar.injectFaults(std::move(map));

    ProgrammingConfig mitigated;
    mitigated.writeVerify.enabled = true;
    mitigated.repair.enabled = true;
    const ProgramReport report = xbar.program(weights, mitigated);
    ASSERT_EQ(report.repairedColumns, 1);
    EXPECT_EQ(xbar.sparesUsed(), 1);
    EXPECT_NE(xbar.physicalColumn(2), 2);

    const CrossbarEval repaired = xbar.evaluateIdeal(inputs, kCycle);
    EXPECT_TRUE(
        compareEval(repaired, referenceIdeal(xbar, inputs, kCycle), 0.0)
            .empty())
        << "cache did not follow the spare-column remap";
    // The repaired column carries real current again (spare is healthy).
    EXPECT_NE(repaired.currents[2], 0.0);
}

TEST(SeedDeterminism, ChipAndFunctionalShareEncoderStream)
{
    SyntheticDigits data(24, 8, 41);
    Network net = buildMlp3(8, 1, 10, 43);
    SpikingModel chip_model = convertToSnn(net, data.firstImages(8));
    SpikingModel sim_model = convertToSnn(net, data.firstImages(8));

    NebulaChip chip;
    chip.programSnn(chip_model);
    SnnSimulator sim(sim_model);

    const Tensor image = data.image(0);
    constexpr int kSteps = 12;
    for (uint64_t id = 0; id < 4; ++id) {
        // The seed each backend would receive for request `id`.
        const uint64_t seed = deriveRequestSeed(/*salt=*/77, id);
        const SnnRunResult on_chip = chip.runSnn(image, kSteps, seed);
        const SnnRunResult functional = sim.run(image, kSteps, seed);

        // Identical seeds must drive identical Poisson input trains on
        // both backends (the logits differ -- the chip quantizes).
        EXPECT_EQ(on_chip.inputRate, functional.inputRate)
            << "encoder streams diverged for request " << id;

        // And each backend is a pure function of (state, image, seed).
        const SnnRunResult chip_again = chip.runSnn(image, kSteps, seed);
        const SnnRunResult sim_again = sim.run(image, kSteps, seed);
        EXPECT_TRUE(bitIdentical(on_chip.logits, chip_again.logits));
        EXPECT_TRUE(bitIdentical(functional.logits, sim_again.logits));
        EXPECT_EQ(on_chip.totalSpikes, chip_again.totalSpikes);
        EXPECT_EQ(functional.totalSpikes, sim_again.totalSpikes);
    }
}

TEST(SeedDeterminism, FunctionalCampaignIsWorkerCountInvariant)
{
    // The functional SNN leg now runs through the engine with
    // per-request seeds (previously a sequential stream forked from the
    // fault seed), so its accuracy cannot depend on worker scheduling.
    SyntheticDigits train(60, 8, 51);
    SyntheticDigits test(16, 8, 52);
    Network net = buildMlp3(8, 1, 10, 53);

    CampaignConfig config;
    config.images = 12;
    config.timesteps = 10;
    config.rates = {0.02};
    config.seeds = {5};
    config.mitigations = {MitigationSpec::none()};
    config.runAnn = false;
    config.runSnn = true;

    config.numWorkers = 1;
    const CampaignResult serial = runFunctionalCampaign(
        net, train.firstImages(16), test, config);
    config.numWorkers = 4;
    const CampaignResult parallel = runFunctionalCampaign(
        net, train.firstImages(16), test, config);

    ASSERT_EQ(serial.rows.size(), parallel.rows.size());
    for (size_t i = 0; i < serial.rows.size(); ++i) {
        EXPECT_EQ(serial.rows[i].correct, parallel.rows[i].correct);
        EXPECT_EQ(serial.rows[i].accuracy, parallel.rows[i].accuracy);
    }
}

} // namespace
} // namespace testing
} // namespace nebula
