/**
 * @file
 * Golden regression vectors for the three chip execution modes. Each
 * test runs a fixed tiny model on fixed inputs with fixed seeds and
 * compares every number against tests/golden/<name>.txt: integer
 * quantities (spike counts, accumulator operations) must match exactly,
 * floating-point ones within 1e-12 relative -- any behavioural drift in
 * the device/circuit/arch stack fails here even if accuracy metrics
 * happen to survive it.
 *
 * To regenerate after an *intentional* numeric change:
 *
 *     NEBULA_REGEN_GOLDEN=1 ./build/tests/golden_test
 *
 * and commit the rewritten files together with the change that
 * justifies them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "arch/chip.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "runtime/request.hpp"
#include "snn/hybrid.hpp"

namespace nebula {
namespace {

constexpr int kImageSize = 10;
constexpr int kClasses = 10;
constexpr int kTimesteps = 12;
constexpr uint64_t kSeedSalt = 2024;

/** Ordered key/value records of one golden scenario. */
using Golden = std::vector<std::pair<std::string, std::string>>;

std::string
goldenPath(const std::string &name)
{
    return std::string(NEBULA_SOURCE_DIR) + "/tests/golden/" + name;
}

bool
regenRequested()
{
    const char *env = std::getenv("NEBULA_REGEN_GOLDEN");
    return env != nullptr && env[0] == '1';
}

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
addInt(Golden &g, const std::string &key, long long v)
{
    g.emplace_back(key, std::to_string(v));
}

void
addFloat(Golden &g, const std::string &key, double v)
{
    g.emplace_back(key, formatDouble(v));
}

void
addTensor(Golden &g, const std::string &key, const Tensor &t)
{
    for (long long i = 0; i < t.size(); ++i)
        addFloat(g, key + "[" + std::to_string(i) + "]",
                 static_cast<double>(t[i]));
}

void
writeGolden(const std::string &name, const Golden &actual)
{
    std::ofstream file(goldenPath(name), std::ios::trunc);
    ASSERT_TRUE(file.good()) << "cannot write " << goldenPath(name);
    file << "# Golden vectors -- regenerate with NEBULA_REGEN_GOLDEN=1"
         << " ./golden_test\n";
    for (const auto &kv : actual)
        file << kv.first << " " << kv.second << "\n";
}

/**
 * Compare against the committed file. Integer-looking values must match
 * exactly; floats within 1e-12 relative. Missing file instructs how to
 * create it.
 */
void
checkGolden(const std::string &name, const Golden &actual)
{
    if (regenRequested()) {
        writeGolden(name, actual);
        return;
    }
    std::ifstream file(goldenPath(name));
    ASSERT_TRUE(file.good())
        << "missing golden file " << goldenPath(name)
        << " -- generate it with NEBULA_REGEN_GOLDEN=1 ./golden_test";

    Golden expected;
    std::string line;
    while (std::getline(file, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const size_t space = line.find(' ');
        ASSERT_NE(space, std::string::npos) << "malformed line: " << line;
        expected.emplace_back(line.substr(0, space),
                              line.substr(space + 1));
    }

    ASSERT_EQ(expected.size(), actual.size())
        << "golden " << name << " has a different record count -- "
        << "regenerate if the change is intentional";
    for (size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(expected[i].first, actual[i].first)
            << "golden " << name << " key order changed at record " << i;
        if (expected[i].second == actual[i].second)
            continue;
        // Not textually identical: allow 1e-12 relative for floats.
        const double want = std::strtod(expected[i].second.c_str(), nullptr);
        const double got = std::strtod(actual[i].second.c_str(), nullptr);
        EXPECT_LE(std::abs(got - want),
                  1e-12 * std::max(1.0, std::abs(want)))
            << "golden " << name << " drifted at " << actual[i].first
            << ": expected " << expected[i].second << ", got "
            << actual[i].second
            << " -- regenerate with NEBULA_REGEN_GOLDEN=1 only if the"
            << " numeric change is intentional";
    }
}

/** Fixed dataset + float/quantized networks shared by the scenarios. */
struct GoldenFixture
{
    SyntheticDigits data{32, kImageSize, /*seed=*/71};
    Network floatNet;
    Network quantNet;
    QuantizationResult quant;

    GoldenFixture()
        : floatNet(buildMlp3(kImageSize, 1, kClasses, /*seed=*/73)),
          quantNet(floatNet.clone()),
          quant(quantizeNetwork(quantNet, data.firstImages(12)))
    {
    }
};

TEST(Golden, AnnLogitsOnChip)
{
    GoldenFixture fix;
    NebulaChip chip;
    chip.programAnn(fix.quantNet, fix.quant);

    Golden g;
    for (int i = 0; i < 3; ++i) {
        const Tensor logits = chip.runAnn(fix.data.image(i));
        addTensor(g, "image" + std::to_string(i) + ".logit", logits);
        addInt(g, "image" + std::to_string(i) + ".class",
               logits.argmaxRow(0));
    }
    addInt(g, "stats.crossbar_evals", chip.stats().crossbarEvals);
    addInt(g, "stats.adc_conversions", chip.stats().adcConversions);
    checkGolden("ann_logits.txt", g);
}

TEST(Golden, SnnSpikeCountsOnChip)
{
    GoldenFixture fix;
    SpikingModel model = convertToSnn(fix.floatNet, fix.data.firstImages(12));
    NebulaChip chip;
    chip.programSnn(model);

    Golden g;
    for (int i = 0; i < 2; ++i) {
        const uint64_t seed =
            deriveRequestSeed(kSeedSalt, static_cast<uint64_t>(i));
        const SnnRunResult r =
            chip.runSnn(fix.data.image(i), kTimesteps, seed);
        const std::string p = "image" + std::to_string(i) + ".";
        addInt(g, p + "total_spikes", r.totalSpikes);
        for (size_t k = 0; k < r.ifSpikes.size(); ++k)
            addInt(g, p + "if" + std::to_string(k) + ".spikes",
                   r.ifSpikes[k]);
        addFloat(g, p + "input_rate", r.inputRate);
        addTensor(g, p + "logit", r.logits);
        addInt(g, p + "class", r.predictedClass());
    }
    checkGolden("snn_spikes.txt", g);
}

TEST(Golden, HybridAccumulatorSums)
{
    GoldenFixture fix;
    Network ann = fix.floatNet.clone();
    HybridNetwork hybrid(ann, fix.data.firstImages(12), /*ann_layers=*/1);

    Golden g;
    for (int i = 0; i < 2; ++i) {
        const uint64_t seed =
            deriveRequestSeed(kSeedSalt, 100 + static_cast<uint64_t>(i));
        const HybridRunResult r =
            hybrid.run(fix.data.image(i), kTimesteps, seed);
        const std::string p = "image" + std::to_string(i) + ".";
        addInt(g, p + "prefix_spikes", r.prefixSpikes);
        addInt(g, p + "au_accumulations", r.auAccumulations);
        // The logits are a pure function of the AU sums through the ANN
        // suffix, so pinning them pins the accumulator contents.
        addTensor(g, p + "logit", r.logits);
        addInt(g, p + "class", r.predictedClass());
    }
    addInt(g, "boundary_neurons", hybrid.boundaryNeurons());
    checkGolden("hybrid_accum.txt", g);
}

} // namespace
} // namespace nebula
