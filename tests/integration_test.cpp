/**
 * @file
 * Cross-module integration and property tests that tie the stack
 * together: device-vs-circuit consistency, whole-zoo construction,
 * energy/pipeline/traffic coherence, and stochastic device behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/energy_model.hpp"
#include "arch/pipeline.hpp"
#include "arch/placement.hpp"
#include "circuit/crossbar.hpp"
#include "common/units.hpp"
#include "device/synapse_device.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"
#include "snn/convert.hpp"
#include "snn/snn_sim.hpp"

namespace nebula {
namespace {

using namespace units;

TEST(DeviceCircuit, SynapseDeviceMatchesCrossbarCellLaw)
{
    // The crossbar's conductance-from-weight law must agree with what a
    // real SynapseDevice programs for the same discrete level.
    CrossbarParams cp;
    cp.rows = cp.cols = 4;
    CrossbarArray xbar(cp);

    // weight w in [-1,1] -> level round((w+1)/2 * 15).
    std::vector<float> weights(16, 0.0f);
    weights[0] = -1.0f; // level 0
    weights[1] = 1.0f;  // level 15
    weights[2] = 0.2f;  // level 9
    std::vector<float> cells(16, 0.0f);
    cells[0] = weights[0];
    cells[1 * 4 + 1] = weights[1];
    cells[2 * 4 + 2] = weights[2];
    xbar.programWeights(cells);

    auto device_conductance = [](int level) {
        SynapseDevice dev;
        dev.program(level, 16);
        return dev.conductance();
    };
    EXPECT_NEAR(xbar.conductanceAt(0, 0), device_conductance(0), 1e-9);
    EXPECT_NEAR(xbar.conductanceAt(1, 1), device_conductance(15), 1e-9);
    EXPECT_NEAR(xbar.conductanceAt(2, 2), device_conductance(9), 1e-9);
}

TEST(DeviceStochastic, ThermalJitterNeedsTrimPulses)
{
    // With thermal jitter enabled, closed-loop programming still
    // converges to the right state (possibly with extra trim pulses).
    SynapseDeviceParams p;
    p.track.thermalJitter = 0.6;
    Rng rng(4242);
    int total_pulses = 0;
    for (int level : {3, 8, 14}) {
        SynapseDevice dev(p);
        total_pulses += dev.program(level, 16, &rng);
        EXPECT_EQ(dev.level(), level);
    }
    // Deterministic programming of the same levels takes 3 pulses.
    EXPECT_GE(total_pulses, 3);
}

TEST(DeviceStochastic, JitterIsZeroMeanOnAverage)
{
    DwTrackParams p;
    p.thermalJitter = 0.5;
    Rng rng(77);
    const double i = 2.0 * p.criticalDensity * p.hmCrossSection();
    double sum = 0.0;
    const int n = 2000;
    for (int k = 0; k < n; ++k) {
        DomainWallTrack track(p);
        sum += track.applyCurrent(i, 10 * ns, &rng);
    }
    DomainWallTrack clean((DwTrackParams()));
    const double expected = clean.applyCurrent(i, 10 * ns);
    EXPECT_NEAR(sum / n, expected, 0.1 * expected);
}

TEST(Zoo, EveryPaperModelBuildsAndMaps)
{
    struct Case { const char *name; int ch, sp; };
    const Case cases[] = {
        {"mlp3", 1, 28},       {"lenet5", 1, 28},
        {"vgg13", 3, 32},      {"vgg13-c100", 3, 32},
        {"mobilenet", 3, 32},  {"mobilenet-c100", 3, 32},
        {"svhn", 3, 32},       {"alexnet", 3, 64},
    };
    for (const Case &c : cases) {
        Network net = buildPaperModel(c.name);
        Tensor x({1, c.ch, c.sp, c.sp});
        Tensor y = net.forward(x);
        EXPECT_EQ(y.rank(), 2) << c.name;
        const auto mapping = LayerMapper().map(net);
        EXPECT_EQ(mapping.layers.size(),
                  net.weightLayerIndices().size())
            << c.name;
        for (const auto &m : mapping.layers) {
            EXPECT_GT(m.coresNeeded, 0) << c.name << " " << m.name;
            EXPECT_GT(m.utilization, 0.0) << c.name << " " << m.name;
        }
    }
}

TEST(Zoo, UnknownPaperModelIsFatal)
{
    EXPECT_DEATH({ buildPaperModel("resnet50"); }, "unknown paper model");
}

TEST(Coherence, EnergyCyclesMatchPipelinePositions)
{
    // The energy model's per-layer cycle count equals the mapper's
    // positions (x timesteps), the same quantity the pipeline streams.
    Network net = buildPaperModel("svhn");
    Tensor x({1, 3, 32, 32});
    net.forward(x);
    const auto mapping = LayerMapper().map(net);
    EnergyModel model;
    const auto ann = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    for (size_t i = 0; i < mapping.layers.size(); ++i)
        EXPECT_EQ(ann.layers[i].cycles, mapping.layers[i].positions);

    const int T = 7;
    const auto snn = model.evaluateSnn(
        mapping, ActivityProfile::decaying(mapping.layers.size()), T);
    for (size_t i = 0; i < mapping.layers.size(); ++i)
        EXPECT_EQ(snn.layers[i].cycles, mapping.layers[i].positions * T);
}

TEST(Coherence, PlacementCoresMatchMappingDemand)
{
    Network net = buildPaperModel("mobilenet");
    Tensor x({1, 3, 32, 32});
    net.forward(x);
    const auto mapping = LayerMapper().map(net);
    const auto placement = ChipPlacer().place(mapping, Mode::SNN);
    for (size_t i = 0; i < mapping.layers.size(); ++i)
        EXPECT_EQ(static_cast<long long>(placement.layers[i].cores.size()),
                  mapping.layers[i].coresNeeded);
}

TEST(Coherence, QuantizedModelSurvivesConversionAndMapping)
{
    // quantize -> convert -> map: the full algorithmic pipeline on one
    // model without a functional run.
    Rng rng(9);
    SyntheticDigits data(96, 12, 3131);
    Network net = buildLenet5(12, 1, 10, 3131);
    quantizeNetwork(net, data.firstImages(48), 16, 16);
    SpikingModel model = convertToSnn(net, data.firstImages(48));

    Tensor probe({1, 1, 12, 12});
    model.resetState();
    model.net.forward(probe);
    const auto mapping = LayerMapper().map(model.net);
    EXPECT_EQ(mapping.layers.size(), 5u);
}

TEST(Coherence, SnnEnergyUsesMeasuredActivity)
{
    // Measured activity from a real SNN run feeds the energy model; the
    // result must be bounded by the same model at activity 0 and 1.
    SyntheticDigits data(400, 12, 997);
    Network net = buildLenet5(12, 1, 10, 997);
    TrainConfig cfg;
    cfg.epochs = 2;
    SgdTrainer trainer(cfg);
    trainer.train(net, data);

    SpikingModel model = convertToSnn(net, data.firstImages(32));
    SnnSimulator sim(model, 1.0, 31);
    const auto run = sim.run(data.image(0), 20);

    Network full = buildPaperModel("lenet5");
    Tensor x({1, 1, 28, 28});
    full.forward(x);
    const auto mapping = LayerMapper().map(full);

    // Interpolate measured IF activity onto the full model's layers.
    ActivityProfile measured;
    for (size_t i = 0; i < mapping.layers.size(); ++i) {
        const size_t k =
            std::min(run.ifActivity.size() - 1,
                     i * run.ifActivity.size() / mapping.layers.size());
        measured.inputActivity.push_back(run.ifActivity[k]);
    }

    EnergyModel emodel;
    const int T = 40;
    const double e = emodel.evaluateSnn(mapping, measured, T).totalEnergy;
    const double lo =
        emodel
            .evaluateSnn(mapping,
                         ActivityProfile::uniform(mapping.layers.size(),
                                                  0.0),
                         T)
            .totalEnergy;
    const double hi =
        emodel
            .evaluateSnn(mapping,
                         ActivityProfile::uniform(mapping.layers.size(),
                                                  1.0),
                         T)
            .totalEnergy;
    EXPECT_GT(e, lo);
    EXPECT_LT(e, hi);
}

class CrossbarSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(CrossbarSizes, IdealDotProductScalesExactly)
{
    const int n = GetParam();
    CrossbarParams p;
    p.rows = p.cols = n;
    CrossbarArray xbar(p);
    Rng rng(515);
    std::vector<float> w(static_cast<size_t>(n) * n);
    for (auto &x : w)
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
    xbar.programWeights(w);
    std::vector<double> inputs(static_cast<size_t>(n));
    for (auto &x : inputs)
        x = rng.uniform(0.0, 1.0);

    const auto eval = xbar.evaluateIdeal(inputs, 110 * ns);
    const double kappa = xbar.currentScale();
    // Reference with the quantized cell values the array actually holds.
    for (int j = 0; j < std::min(n, 8); ++j) {
        double ref = 0.0;
        for (int i = 0; i < n; ++i)
            ref += xbar.weightAt(i, j) * inputs[static_cast<size_t>(i)];
        EXPECT_NEAR(eval.currents[static_cast<size_t>(j)] / kappa, ref,
                    1e-6 * n)
            << "col " << j << " size " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossbarSizes,
                         ::testing::Values(8, 32, 100, 128, 256));

} // namespace
} // namespace nebula
