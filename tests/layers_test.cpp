/**
 * @file
 * Layer tests: forward passes against hand references and numerical
 * gradient checks for every trainable layer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace nebula {
namespace {

TEST(Conv2d, IdentityKernel)
{
    Conv2d conv(1, 1, 1, 1, 0, false);
    conv.weight()[0] = 1.0f;
    Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
    Tensor y = conv.forward(x);
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, HandComputed3x3)
{
    // 3x3 all-ones kernel over a 3x3 all-ones image, no padding -> 9.
    Conv2d conv(1, 1, 3, 1, 0, false);
    conv.weight().fill(1.0f);
    Tensor x({1, 1, 3, 3});
    x.fill(1.0f);
    Tensor y = conv.forward(x);
    ASSERT_EQ(y.size(), 1);
    EXPECT_FLOAT_EQ(y[0], 9.0f);
}

TEST(Conv2d, PaddingKeepsSize)
{
    Conv2d conv(2, 3, 3, 1, 1);
    Tensor x({2, 2, 8, 8});
    Tensor y = conv.forward(x);
    EXPECT_EQ(y.shape(), (std::vector<int>{2, 3, 8, 8}));
}

TEST(Conv2d, StrideHalvesSize)
{
    Conv2d conv(1, 4, 3, 2, 1);
    Tensor x({1, 1, 8, 8});
    Tensor y = conv.forward(x);
    EXPECT_EQ(y.shape(), (std::vector<int>{1, 4, 4, 4}));
}

TEST(Conv2d, BiasAdds)
{
    Conv2d conv(1, 2, 1, 1, 0, true);
    conv.weight().zero();
    conv.bias()[0] = 1.5f;
    conv.bias()[1] = -2.5f;
    Tensor x({1, 1, 2, 2});
    Tensor y = conv.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.5f);
    EXPECT_FLOAT_EQ(y.at(0, 1, 1, 1), -2.5f);
}

TEST(Conv2d, GeometryForMapper)
{
    Conv2d conv(64, 128, 3, 1, 1);
    EXPECT_TRUE(conv.isWeightLayer());
    EXPECT_EQ(conv.receptiveField(), 3 * 3 * 64);
    EXPECT_EQ(conv.numKernels(), 128);
    Tensor x({1, 64, 16, 16});
    conv.forward(x);
    EXPECT_EQ(conv.outputPositions(), 16 * 16);
    EXPECT_EQ(conv.outputElements(), 128 * 16 * 16);
}

TEST(DwConv2d, PerChannelFiltering)
{
    DwConv2d conv(2, 1, 1, 0, false);
    conv.weight()[0] = 2.0f; // channel 0 filter
    conv.weight()[1] = 3.0f; // channel 1 filter
    Tensor x({1, 2, 2, 2});
    x.fill(1.0f);
    Tensor y = conv.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 3.0f);
}

TEST(DwConv2d, ReceptiveFieldIsKernelOnly)
{
    DwConv2d conv(256, 3, 1, 1);
    // Depthwise kernels occupy only K*K crossbar rows (low utilization,
    // the effect behind MobileNet's big win in Fig. 12).
    EXPECT_EQ(conv.receptiveField(), 9);
    EXPECT_EQ(conv.numKernels(), 256);
}

TEST(Linear, HandComputed)
{
    Linear fc(2, 2, true);
    fc.weight()[0] = 1.0f; // w00
    fc.weight()[1] = 2.0f; // w01
    fc.weight()[2] = 3.0f; // w10
    fc.weight()[3] = 4.0f; // w11
    fc.bias()[0] = 0.5f;
    fc.bias()[1] = -0.5f;
    Tensor x({1, 2}, {1.0f, 1.0f});
    Tensor y = fc.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 3.5f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 6.5f);
}

TEST(AvgPool, HandComputed)
{
    AvgPool2d pool(2);
    Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
    Tensor y = pool.forward(x);
    ASSERT_EQ(y.size(), 1);
    EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(MaxPool, HandComputed)
{
    MaxPool2d pool(2);
    Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
    Tensor y = pool.forward(x);
    ASSERT_EQ(y.size(), 1);
    EXPECT_FLOAT_EQ(y[0], 4.0f);
}

TEST(Relu, ZeroesNegatives)
{
    Relu relu;
    Tensor x({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
    Tensor y = relu.forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 2.0f);
    EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ClippedRelu, ClipsAndQuantizes)
{
    ClippedRelu act(2.0f, 5); // levels at 0, .5, 1, 1.5, 2
    Tensor x({5}, {-1.0f, 0.6f, 1.2f, 1.9f, 5.0f});
    Tensor y = act.forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.5f);
    EXPECT_FLOAT_EQ(y[2], 1.0f);
    EXPECT_FLOAT_EQ(y[3], 2.0f);
    EXPECT_FLOAT_EQ(y[4], 2.0f);
}

TEST(ClippedRelu, NoQuantizationWhenDisabled)
{
    ClippedRelu act(1.0f, 0);
    Tensor x({3}, {0.37f, -0.5f, 1.7f});
    Tensor y = act.forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.37f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 1.0f);
}

TEST(Flatten, RoundTrip)
{
    Flatten flat;
    Tensor x({2, 3, 4, 4});
    Tensor y = flat.forward(x, true);
    EXPECT_EQ(y.shape(), (std::vector<int>{2, 48}));
    Tensor g = flat.backward(y);
    EXPECT_EQ(g.shape(), x.shape());
}

TEST(BatchNorm, NormalizesInTrainMode)
{
    BatchNorm2d bn(1);
    Rng rng(5);
    Tensor x({8, 1, 4, 4});
    x.randn(rng, 3.0f);
    for (long long i = 0; i < x.size(); ++i)
        x[i] += 10.0f;

    Tensor y = bn.forward(x, true);
    EXPECT_NEAR(y.mean(), 0.0, 1e-4);
    double var = 0.0;
    for (long long i = 0; i < y.size(); ++i)
        var += y[i] * y[i];
    var /= y.size();
    EXPECT_NEAR(var, 1.0, 1e-2);
}

TEST(BatchNorm, RunningStatsConvergeToData)
{
    BatchNorm2d bn(1, 0.5f);
    Rng rng(6);
    for (int it = 0; it < 20; ++it) {
        Tensor x({16, 1, 2, 2});
        x.randn(rng, 2.0f);
        for (long long i = 0; i < x.size(); ++i)
            x[i] += 5.0f;
        bn.forward(x, true);
    }
    EXPECT_NEAR(bn.runningMean()[0], 5.0f, 0.4f);
    EXPECT_NEAR(bn.runningVar()[0], 4.0f, 1.0f);
}

TEST(BatchNorm, EffectiveAffineMatchesEvalForward)
{
    BatchNorm2d bn(2);
    Rng rng(7);
    Tensor x({4, 2, 3, 3});
    x.randn(rng, 1.5f);
    bn.forward(x, true); // populate running stats

    std::vector<float> scale, shift;
    bn.effectiveAffine(scale, shift);

    Tensor y = bn.forward(x, false);
    for (int n = 0; n < 4; ++n)
        for (int c = 0; c < 2; ++c)
            for (int h = 0; h < 3; ++h)
                for (int w = 0; w < 3; ++w)
                    EXPECT_NEAR(y.at(n, c, h, w),
                                scale[static_cast<size_t>(c)] *
                                        x.at(n, c, h, w) +
                                    shift[static_cast<size_t>(c)],
                                1e-5f);
}

// ---------------------------------------------------------------------
// Numerical gradient checking
// ---------------------------------------------------------------------

/** Scalar loss = sum of elementwise squares / 2, dL/dy = y. */
double
halfSquaredSum(const Tensor &t)
{
    double s = 0.0;
    for (long long i = 0; i < t.size(); ++i)
        s += 0.5 * static_cast<double>(t[i]) * t[i];
    return s;
}

/**
 * Check dL/dx and dL/dw of a layer against central differences for the
 * loss L = 0.5 * ||forward(x)||^2.
 */
void
checkGradients(Layer &layer, Tensor x, double tol = 2e-2)
{
    Tensor y = layer.forward(x, true);
    layer.zeroGrad();
    Tensor grad_in = layer.backward(y); // dL/dy = y

    const float eps = 1e-3f;

    // Input gradients (sample a subset for speed).
    const long long stride_x = std::max<long long>(1, x.size() / 40);
    for (long long i = 0; i < x.size(); i += stride_x) {
        Tensor xp = x, xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const double lp = halfSquaredSum(layer.forward(xp, true));
        const double lm = halfSquaredSum(layer.forward(xm, true));
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(grad_in[i], numeric,
                    tol * std::max(1.0, std::abs(numeric)))
            << "input grad " << i;
    }

    // Parameter gradients.
    auto params = layer.parameters();
    auto grads = layer.gradients();
    // Re-establish forward caches for the unmodified input.
    layer.forward(x, true);
    for (size_t p = 0; p < params.size(); ++p) {
        Tensor &w = *params[p];
        const long long stride_w = std::max<long long>(1, w.size() / 40);
        for (long long i = 0; i < w.size(); i += stride_w) {
            const float keep = w[i];
            w[i] = keep + eps;
            const double lp = halfSquaredSum(layer.forward(x, true));
            w[i] = keep - eps;
            const double lm = halfSquaredSum(layer.forward(x, true));
            w[i] = keep;
            const double numeric = (lp - lm) / (2.0 * eps);
            EXPECT_NEAR((*grads[p])[i], numeric,
                        tol * std::max(1.0, std::abs(numeric)))
                << "param " << p << " grad " << i;
        }
    }
}

TEST(GradCheck, Linear)
{
    Rng rng(11);
    Linear fc(6, 4);
    fc.initKaiming(rng);
    Tensor x({3, 6});
    x.randn(rng);
    checkGradients(fc, x);
}

TEST(GradCheck, Conv2d)
{
    Rng rng(12);
    Conv2d conv(2, 3, 3, 1, 1);
    conv.initKaiming(rng);
    Tensor x({2, 2, 5, 5});
    x.randn(rng);
    checkGradients(conv, x);
}

TEST(GradCheck, Conv2dStride2NoBias)
{
    Rng rng(13);
    Conv2d conv(1, 2, 3, 2, 1, false);
    conv.initKaiming(rng);
    Tensor x({1, 1, 6, 6});
    x.randn(rng);
    checkGradients(conv, x);
}

TEST(GradCheck, DwConv2d)
{
    Rng rng(14);
    DwConv2d conv(3, 3, 1, 1);
    conv.initKaiming(rng);
    Tensor x({2, 3, 4, 4});
    x.randn(rng);
    checkGradients(conv, x);
}

TEST(GradCheck, AvgPool)
{
    Rng rng(15);
    AvgPool2d pool(2);
    Tensor x({2, 2, 4, 4});
    x.randn(rng);
    checkGradients(pool, x);
}

TEST(GradCheck, MaxPool)
{
    Rng rng(16);
    MaxPool2d pool(2);
    Tensor x({2, 2, 4, 4});
    x.randn(rng);
    // Max pooling is piecewise linear; keep x away from ties.
    checkGradients(pool, x);
}

TEST(GradCheck, ReluAndClipped)
{
    Rng rng(17);
    Relu relu;
    Tensor x({3, 10});
    x.randn(rng);
    // Shift away from the kink at 0.
    for (long long i = 0; i < x.size(); ++i)
        if (std::abs(x[i]) < 0.05f)
            x[i] += 0.1f;
    checkGradients(relu, x);

    ClippedRelu clipped(1.0f, 0);
    Tensor x2 = x;
    for (long long i = 0; i < x2.size(); ++i)
        if (std::abs(x2[i] - 1.0f) < 0.05f)
            x2[i] += 0.1f;
    checkGradients(clipped, x2);
}

TEST(GradCheck, BatchNorm)
{
    Rng rng(18);
    BatchNorm2d bn(2);
    Tensor x({4, 2, 3, 3});
    x.randn(rng);
    checkGradients(bn, x, 5e-2);
}

} // namespace
} // namespace nebula
