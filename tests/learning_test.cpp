/**
 * @file
 * Tests for the on-device learning subsystem: the crossbar incremental
 * update API (differential vs whole-array re-programming, EvalCache
 * invalidation, pulse/energy accounting), WTA support on the IF layer,
 * STDP-style competitive clustering (determinism, purity), in-situ
 * supervised fine-tuning (recovery vs the monitor-off control), and the
 * learning campaign runner.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "arch/chip.hpp"
#include "circuit/crossbar.hpp"
#include "learning/campaign.hpp"
#include "learning/insitu.hpp"
#include "learning/stdp.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"
#include "reliability/fault_model.hpp"
#include "snn/if_layer.hpp"

namespace nebula {
namespace {

/** Level a weight value w in [-1, 1] programs to (program()'s grid). */
int
weightLevel(float w, int levels)
{
    const double clamped = std::clamp<double>(w, -1.0, 1.0);
    return static_cast<int>(
        std::lround((clamped + 1.0) / 2.0 * (levels - 1)));
}

/** Deterministic pseudo-random weight in [-1, 1]. */
float
patternWeight(int row, int col, int salt)
{
    Rng rng(deriveFaultSeed(static_cast<uint64_t>(salt),
                            static_cast<uint64_t>(row) * 131 + col));
    return static_cast<float>(rng.uniform(-1.0, 1.0));
}

std::vector<float>
patternWeights(int rows, int cols, int salt)
{
    std::vector<float> weights(static_cast<size_t>(rows) * cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            weights[static_cast<size_t>(r) * cols + c] =
                patternWeight(r, c, salt);
    return weights;
}

/** Deltas that move @p xbar from its current readback to @p target. */
std::vector<CellUpdate>
deltasToward(const CrossbarArray &xbar, const std::vector<float> &target)
{
    std::vector<CellUpdate> ups;
    for (int r = 0; r < xbar.rows(); ++r)
        for (int c = 0; c < xbar.cols(); ++c) {
            const int want = weightLevel(
                target[static_cast<size_t>(r) * xbar.cols() + c],
                xbar.params().levels);
            const int delta = want - xbar.levelAt(r, c);
            if (delta != 0)
                ups.push_back(CellUpdate{r, c, delta});
        }
    return ups;
}

void
expectIdenticalCells(const CrossbarArray &a, const CrossbarArray &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (int r = 0; r < a.rows(); ++r)
        for (int c = 0; c <= a.cols(); ++c) // include reference column
            ASSERT_EQ(a.conductanceAt(r, c), b.conductanceAt(r, c))
                << "cell (" << r << ", " << c << ")";
}

// -- incremental update API ---------------------------------------------

TEST(UpdateCells, LevelAtRoundTripsProgrammedLevels)
{
    CrossbarParams xp;
    xp.rows = 8;
    xp.cols = 6;
    CrossbarArray xbar(xp);
    const auto weights = patternWeights(xp.rows, xp.cols, 1);
    xbar.programWeights(weights);
    for (int r = 0; r < xp.rows; ++r)
        for (int c = 0; c < xp.cols; ++c)
            EXPECT_EQ(xbar.levelAt(r, c),
                      weightLevel(
                          weights[static_cast<size_t>(r) * xp.cols + c],
                          xp.levels));
}

TEST(UpdateCells, DifferentialVsReprogramCleanOpenLoop)
{
    CrossbarParams xp;
    xp.rows = 12;
    xp.cols = 8;
    CrossbarArray incremental(xp), reference(xp);
    const auto before = patternWeights(xp.rows, xp.cols, 2);
    const auto after = patternWeights(xp.rows, xp.cols, 3);
    incremental.programWeights(before);
    reference.programWeights(before);

    const auto ups = deltasToward(incremental, after);
    EXPECT_FALSE(ups.empty());
    const UpdateReport report = incremental.updateCells(ups);
    reference.programWeights(after);

    expectIdenticalCells(incremental, reference);
    EXPECT_EQ(report.cells, static_cast<long long>(ups.size()));
    EXPECT_EQ(report.pulses, report.levelSteps);
    EXPECT_EQ(report.blockedCells, 0);
    EXPECT_EQ(report.failedCells, 0);
    EXPECT_GT(report.updateEnergy, 0.0);
}

/**
 * Faulted differential scaffold: program both arrays with @p before,
 * walk @p incremental toward @p after through updateCells and @p
 * reference through a naive whole-array re-program, then check cell for
 * cell: every cell the incremental path actually moved must land
 * exactly where the re-program lands it, and every cell it skipped
 * (already sensed on target) or could not move (stuck / open) must hold
 * its pre-update conductance. Skipped cells are the one legitimate
 * divergence: a decayed or drifted cell whose *readback* already
 * quantizes to the target gets no pulse, so its analog value keeps the
 * old program's signature instead of a fresh write's.
 */
void
runFaultedDifferential(CrossbarArray &incremental, CrossbarArray &reference,
                       const std::vector<float> &before,
                       const std::vector<float> &after,
                       const ProgrammingConfig &config,
                       UpdateReport *out_report = nullptr)
{
    incremental.program(before, config);
    reference.program(before, config);

    std::vector<double> snapshot;
    for (int r = 0; r < incremental.rows(); ++r)
        for (int c = 0; c <= incremental.cols(); ++c)
            snapshot.push_back(incremental.conductanceAt(r, c));

    const auto ups = deltasToward(incremental, after);
    std::vector<char> updated(
        static_cast<size_t>(incremental.rows()) * incremental.cols(), 0);
    const FaultMap &faults = incremental.faults();
    for (const CellUpdate &u : ups) {
        const bool blocked =
            !faults.empty() &&
            (faults.rowOpen(u.row) || faults.colOpen(u.col) ||
             faults.cell(u.row, u.col).stuck());
        if (!blocked)
            updated[static_cast<size_t>(u.row) * incremental.cols() +
                    u.col] = 1;
    }

    const UpdateReport report = incremental.updateCells(ups, config);
    reference.program(after, config);
    if (out_report)
        *out_report = report;

    const int stride = incremental.cols() + 1;
    for (int r = 0; r < incremental.rows(); ++r) {
        for (int c = 0; c <= incremental.cols(); ++c) {
            const bool moved =
                c < incremental.cols() &&
                updated[static_cast<size_t>(r) * incremental.cols() + c];
            if (moved)
                ASSERT_EQ(incremental.conductanceAt(r, c),
                          reference.conductanceAt(r, c))
                    << "updated cell (" << r << ", " << c << ")";
            else
                ASSERT_EQ(incremental.conductanceAt(r, c),
                          snapshot[static_cast<size_t>(r) * stride + c])
                    << "untouched cell (" << r << ", " << c << ")";
        }
    }
}

TEST(UpdateCells, DifferentialVsReprogramFaultedOpenLoop)
{
    CrossbarParams xp;
    xp.rows = 16;
    xp.cols = 10;

    CompositeFaultModel model;
    model.add(std::make_unique<StuckAtFaultModel>(0.06));
    model.add(std::make_unique<PinningDriftFaultModel>(0.10, 3));
    model.add(std::make_unique<RetentionDecayFaultModel>(0.8, 1.0, 0.4));
    model.add(std::make_unique<LineOpenFaultModel>(0.05, 0.05));

    CrossbarArray incremental(xp), reference(xp);
    FaultMap map_a(xp.rows, xp.cols), map_b(xp.rows, xp.cols);
    model.sampleInto(map_a, 77);
    model.sampleInto(map_b, 77);
    incremental.injectFaults(std::move(map_a));
    reference.injectFaults(std::move(map_b));

    UpdateReport report;
    runFaultedDifferential(incremental, reference,
                           patternWeights(xp.rows, xp.cols, 4),
                           patternWeights(xp.rows, xp.cols, 5), {}, &report);
    EXPECT_GT(report.blockedCells, 0);
}

TEST(UpdateCells, DifferentialVsReprogramWriteVerify)
{
    CrossbarParams xp;
    xp.rows = 14;
    xp.cols = 9;

    // Hard-stuck only: soft stuck cells would depin through program()'s
    // escalation rng, which the gentler incremental path does not model.
    CompositeFaultModel model;
    model.add(std::make_unique<StuckAtFaultModel>(0.05, 0.5, 1.0));
    model.add(std::make_unique<PinningDriftFaultModel>(0.12, 2));
    model.add(std::make_unique<RetentionDecayFaultModel>(0.5, 1.0, 0.3));

    CrossbarArray incremental(xp), reference(xp);
    FaultMap map_a(xp.rows, xp.cols), map_b(xp.rows, xp.cols);
    model.sampleInto(map_a, 91);
    model.sampleInto(map_b, 91);
    incremental.injectFaults(std::move(map_a));
    reference.injectFaults(std::move(map_b));

    ProgrammingConfig wv;
    wv.writeVerify.enabled = true;
    runFaultedDifferential(incremental, reference,
                           patternWeights(xp.rows, xp.cols, 6),
                           patternWeights(xp.rows, xp.cols, 7), wv);
}

TEST(UpdateCells, InvalidatesEvalCache)
{
    CrossbarParams xp;
    xp.rows = 10;
    xp.cols = 6;
    CrossbarArray xbar(xp);
    const auto before = patternWeights(xp.rows, xp.cols, 8);
    xbar.programWeights(before);

    std::vector<double> inputs(static_cast<size_t>(xp.rows), 1.0);
    const CrossbarEval stale = xbar.evaluateIdeal(inputs, 1e-7);

    // Move one cell several levels; the cached dense matrix must be
    // rebuilt or evaluation would keep reading the old conductance.
    const int row = 3, col = 2;
    const int delta = xbar.levelAt(row, col) > xp.levels / 2 ? -4 : 4;
    const UpdateReport report = xbar.applyDelta(row, col, delta);
    EXPECT_EQ(report.cells, 1);

    const CrossbarEval fresh = xbar.evaluateIdeal(inputs, 1e-7);
    EXPECT_NE(stale.currents[col], fresh.currents[col]);

    // And the refreshed cache must agree with an array programmed
    // straight to the final state.
    CrossbarArray direct(xp);
    auto target = before;
    target[static_cast<size_t>(row) * xp.cols + col] =
        2.0f * xbar.levelAt(row, col) / (xp.levels - 1) - 1.0f;
    direct.programWeights(target);
    const CrossbarEval expect = direct.evaluateIdeal(inputs, 1e-7);
    for (int c = 0; c < xp.cols; ++c)
        EXPECT_DOUBLE_EQ(fresh.currents[c], expect.currents[c]);
}

TEST(UpdateCells, DeterministicUnderVariation)
{
    CrossbarParams xp;
    xp.rows = 10;
    xp.cols = 7;
    xp.variationSigma = 0.05;
    xp.variationSeed = 1234;
    CrossbarArray a(xp), b(xp);
    const auto before = patternWeights(xp.rows, xp.cols, 9);
    const auto after = patternWeights(xp.rows, xp.cols, 10);
    a.programWeights(before);
    b.programWeights(before);

    // Same seed + same update stream => bit-identical learned state.
    a.updateCells(deltasToward(a, after));
    b.updateCells(deltasToward(b, after));
    expectIdenticalCells(a, b);
}

TEST(UpdateCells, ClampsAtLevelRangeAndBillsPulses)
{
    CrossbarParams xp;
    xp.rows = 4;
    xp.cols = 4;
    CrossbarArray xbar(xp);
    xbar.programWeights(
        std::vector<float>(static_cast<size_t>(xp.rows) * xp.cols, 0.0f));

    const int mid = xbar.levelAt(0, 0);
    const UpdateReport report = xbar.applyDelta(0, 0, 1000);
    EXPECT_EQ(report.clampedCells, 1);
    EXPECT_EQ(xbar.levelAt(0, 0), xp.levels - 1);
    EXPECT_EQ(report.levelSteps, xp.levels - 1 - mid);
    EXPECT_EQ(report.pulses, report.levelSteps);
    EXPECT_DOUBLE_EQ(report.pulsesPerCell(),
                     static_cast<double>(report.pulses));
}

TEST(UpdateCells, ChipLayerUpdateMatchesDirectCellUpdate)
{
    SyntheticDigits data(64, 8, 31);
    Network net = buildMlp3(8, 1, 10, 41);
    const QuantizationResult quant =
        quantizeNetwork(net, data.firstImages(32));

    NebulaChip chip;
    chip.programAnn(net, quant);
    ASSERT_GT(chip.mappedLayerCount(), 0);

    const Tensor probe = data.image(0);
    const Tensor before = chip.runAnn(probe);

    // Push every first-layer weight to its own quantized level: a
    // full-layer "re-trim" through the incremental API must change
    // nothing measurable (cells are already on their levels)...
    Network &source = net;
    const int first = source.weightLayerIndices()[0];
    const Layer &layer = source.layer(first);
    const Tensor &w = *layer.constParameters()[0];
    const float scale = chip.mappedWeightScale(0);
    const int top = chip.mappedLevels() - 1;
    std::vector<NebulaChip::WeightCellUpdate> ups;
    const int rf = layer.receptiveField();
    for (long long i = 0; i < w.size(); ++i) {
        const double norm =
            std::clamp(static_cast<double>(w[i]) / scale, -1.0, 1.0);
        ups.push_back(NebulaChip::WeightCellUpdate{
            static_cast<int>(i / rf), static_cast<int>(i % rf),
            static_cast<int>(std::lround((norm + 1.0) / 2.0 * top))});
    }
    const UpdateReport retrim = chip.updateMappedLayer(0, ups);
    EXPECT_EQ(retrim.cells, 0); // every cell already on target
    const Tensor same = chip.runAnn(probe);
    for (long long i = 0; i < before.size(); ++i)
        EXPECT_EQ(before[i], same[i]);

    // ...while an actual level shift must move the logits.
    std::vector<NebulaChip::WeightCellUpdate> shift;
    for (int k = 0; k < layer.numKernels(); ++k)
        shift.push_back(NebulaChip::WeightCellUpdate{k, 0, top});
    const UpdateReport moved = chip.updateMappedLayer(0, shift);
    EXPECT_GT(moved.cells, 0);
    EXPECT_GT(chip.updateReport().pulses, 0);
    const Tensor after = chip.runAnn(probe);
    bool changed = false;
    for (long long i = 0; i < before.size(); ++i)
        changed = changed || before[i] != after[i];
    EXPECT_TRUE(changed);
}

// -- IF layer WTA support ------------------------------------------------

TEST(IfLayerWta, WinnerIndexTracksMembrane)
{
    IfLayer layer(1e30f); // pure integrator
    EXPECT_EQ(layer.winnerIndex(), -1);
    EXPECT_EQ(layer.membraneData(), nullptr);

    layer.ensureState({1, 4});
    const float in1[4] = {0.1f, 0.4f, 0.2f, 0.0f};
    float out[4];
    layer.step(in1, out, 4);
    EXPECT_EQ(layer.winnerIndex(), 1);

    const float in2[4] = {0.1f, 0.0f, 0.5f, 0.0f};
    layer.step(in2, out, 4);
    EXPECT_EQ(layer.winnerIndex(), 2);

    ASSERT_NE(layer.membraneData(), nullptr);
    EXPECT_FLOAT_EQ(layer.membraneData()[2], 0.7f);

    // Ties break to the lowest index.
    IfLayer tie(1e30f);
    tie.ensureState({1, 3});
    const float same[3] = {0.5f, 0.5f, 0.5f};
    float tout[3];
    tie.step(same, tout, 3);
    EXPECT_EQ(tie.winnerIndex(), 0);
}

// -- STDP competitive clustering ----------------------------------------

StdpConfig
fastStdp()
{
    StdpConfig config;
    config.epochs = 2;
    config.timesteps = 12;
    config.seed = 21;
    return config;
}

TEST(StdpClustering, DeterministicUnderSeed)
{
    SyntheticClusters data(120, 10, 8, 51);
    CrossbarParams xp;
    xp.rows = 2 * 64; // ON/OFF channel pair per pixel
    xp.cols = 10;
    CrossbarArray xa(xp), xb(xp);
    StdpClusterer ca(xa, fastStdp()), cb(xb, fastStdp());

    const ClusteringResult ra = ca.fit(data, 80);
    const ClusteringResult rb = cb.fit(data, 80);

    // Same seed + same stream => bit-identical learned conductances
    // and identical assignments.
    expectIdenticalCells(xa, xb);
    EXPECT_EQ(ra.assignment, rb.assignment);
    EXPECT_EQ(ra.purity, rb.purity);
    EXPECT_EQ(ra.updates.pulses, rb.updates.pulses);
}

TEST(StdpClustering, ReachesPurityOnCleanDevice)
{
    SyntheticClusters data(200, 10, 12, 52);
    CrossbarParams xp;
    xp.rows = 2 * 144; // ON/OFF channel pair per pixel
    xp.cols = 10;
    CrossbarArray xbar(xp);
    StdpClusterer clusterer(xbar, fastStdp());

    const ClusteringResult result = clusterer.fit(data, 160);
    EXPECT_GE(result.purity, 0.7)
        << "clustering must reach >= 0.7 purity on the clean device";
    EXPECT_GT(result.updates.pulses, 0);
    EXPECT_GT(result.updates.updateEnergy, 0.0);
    EXPECT_GT(result.readEnergy, 0.0);
    EXPECT_EQ(result.presentations, 2LL * 160);
}

TEST(StdpClustering, CampaignDegradesGracefullyUnderDrift)
{
    SyntheticClusters data(160, 10, 8, 53);
    LearningCampaignConfig config;
    config.rates = {0.0, 0.05};
    config.seeds = {3};
    config.samples = 120;
    config.stdp = fastStdp();

    const LearningCampaignResult result =
        runLearningCampaign(data, config);
    ASSERT_EQ(result.rows.size(), 2u);
    const double clean = result.meanPurity(0.0);
    const double faulted = result.meanPurity(0.05);
    EXPECT_GE(clean, 0.7);
    // Graceful, not catastrophic: drifted arrays keep most of the
    // clustering structure (and never fall to chance = 0.1).
    EXPECT_GE(faulted, 0.5 * clean);

    const std::string csv = result.csv();
    EXPECT_NE(csv.find("# units:"), std::string::npos);
    EXPECT_NE(csv.find("update_energy_j"), std::string::npos);
    EXPECT_NE(csv.find("rate,seed,samples,purity"), std::string::npos);
}

// -- in-situ supervised fine-tuning -------------------------------------

TEST(InsituTuning, RecoversDecayLossOnMlp3)
{
    SyntheticDigits train(800, 12, 61), test(120, 12, 62);
    Network proto = buildMlp3(12, 1, 10, 71);
    TrainConfig tc;
    tc.epochs = 8;
    SgdTrainer(tc).train(proto, train);
    const QuantizationResult quant =
        quantizeNetwork(proto, train.firstImages(64));

    // Reference: a clean chip.
    Network clean_net = proto.clone();
    NebulaChip clean_chip;
    clean_chip.programAnn(clean_net, quant);

    std::vector<Tensor> test_images;
    std::vector<int> test_labels;
    for (int i = 0; i < test.size(); ++i) {
        test_images.push_back(test.image(i));
        test_labels.push_back(test.label(i));
    }
    const double clean_acc =
        chipAccuracy(clean_chip, test_images, test_labels);

    // Decayed chips: one tuned, one monitor-off control. The decay
    // roughly halves every cell's swing (exp(-0.8) ~ 0.45) with 0.4
    // per-cell spread -- enough to cost tens of accuracy points.
    ReliabilityConfig rel;
    rel.faults = std::make_shared<RetentionDecayFaultModel>(0.8, 1.0, 0.4);
    rel.faultSeed = 99;

    Network tuned_net = proto.clone();
    NebulaChip tuned_chip;
    tuned_chip.setReliability(rel);
    tuned_chip.programAnn(tuned_net, quant);

    Network control_net = proto.clone();
    NebulaChip control_chip;
    control_chip.setReliability(rel);
    control_chip.programAnn(control_net, quant);

    const double degraded_acc =
        chipAccuracy(control_chip, test_images, test_labels);
    ASSERT_LT(degraded_acc, clean_acc)
        << "decay model must actually cost accuracy for this test";

    std::vector<Tensor> calib_images;
    std::vector<int> calib_labels;
    for (int i = 0; i < 320; ++i) {
        calib_images.push_back(train.image(i));
        calib_labels.push_back(train.label(i));
    }
    InsituConfig ic;
    ic.epochs = 3;
    InsituTuner tuner(tuned_chip, tuned_net, ic);
    const InsituResult result = tuner.tune(calib_images, calib_labels);

    const double tuned_acc =
        chipAccuracy(tuned_chip, test_images, test_labels);
    const double control_acc =
        chipAccuracy(control_chip, test_images, test_labels);

    // The monitor-off control stays degraded; the tuned chip recovers
    // at least half of what decay cost.
    EXPECT_EQ(control_acc, degraded_acc);
    EXPECT_GE(tuned_acc - control_acc,
              0.5 * (clean_acc - degraded_acc))
        << "tuned " << tuned_acc << " control " << control_acc
        << " clean " << clean_acc;
    EXPECT_GT(result.updates.pulses, 0);
    EXPECT_GT(result.updates.updateEnergy, 0.0);
    EXPECT_GT(result.chipForwards, 0);
}

} // namespace
} // namespace nebula
