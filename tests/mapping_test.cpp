/**
 * @file
 * Layer-mapper tests: morphable-tile chaining, NU hierarchy selection,
 * ADC spill decisions, depthwise diagonal packing, utilization.
 */

#include <gtest/gtest.h>

#include "arch/mapping.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"

namespace nebula {
namespace {

/** Map a conv layer after fixing its geometry with a forward pass. */
LayerMapping
mapConv(int in_c, int out_c, int k, int spatial, int stride = 1,
        int pad = 1)
{
    Conv2d conv(in_c, out_c, k, stride, pad);
    Tensor x({1, in_c, spatial, spatial});
    conv.forward(x);
    return LayerMapper().mapLayer(conv, 0);
}

TEST(Mapper, SmallKernelUsesH0)
{
    // Rf <= M: a single atomic crossbar, hierarchy level 0.
    const auto m = mapConv(3, 64, 3, 32); // Rf = 27
    EXPECT_EQ(m.chain, 1);
    EXPECT_EQ(m.hierarchyLevel, 0);
    EXPECT_FALSE(m.needsAdc);
    EXPECT_EQ(m.coresNeeded, 1);
    EXPECT_EQ(m.positions, 32 * 32);
}

TEST(Mapper, MediumKernelChainsWithinTile)
{
    // M < Rf <= 2M: two chained ACs (vertical switch), H1.
    const auto m = mapConv(16, 64, 3, 16); // Rf = 144
    EXPECT_EQ(m.chain, 2);
    EXPECT_EQ(m.hierarchyLevel, 1);
    EXPECT_FALSE(m.needsAdc);
}

TEST(Mapper, LargeKernelUsesSupertileH2)
{
    // 4M < Rf <= 16M: chained across tiles, H2 neuron units.
    const auto m = mapConv(128, 128, 3, 8); // Rf = 1152
    EXPECT_EQ(m.chain, 16);
    EXPECT_EQ(m.hierarchyLevel, 2);
    EXPECT_FALSE(m.needsAdc);
    EXPECT_EQ(m.coresNeeded, 1);
}

TEST(Mapper, HugeKernelSpillsAndNeedsAdc)
{
    // Rf > 16M = 2048: multi-NC, ADC + RU reduction.
    const auto m = mapConv(512, 512, 3, 4); // Rf = 4608
    EXPECT_TRUE(m.needsAdc);
    EXPECT_EQ(m.coreSplit, 3); // ceil(4608 / 2048)
    EXPECT_GT(m.adcConversions, 0);
    EXPECT_EQ(m.ruAdditions,
              m.positions * static_cast<long long>(m.kernels) *
                  (m.coreSplit - 1));
}

TEST(Mapper, VggFirstLayerLowUtilization)
{
    // Paper Sec. IV-B2: VGG's first layer uses only 27 x 64 of a
    // 128 x 128 crossbar.
    const auto m = mapConv(3, 64, 3, 32);
    EXPECT_NEAR(m.utilization, 27.0 * 64 / (128 * 128), 1e-9);
}

TEST(Mapper, ManyKernelsSplitIntoColumnGroups)
{
    const auto m = mapConv(16, 300, 3, 16); // Rf = 144, kernels = 300
    EXPECT_EQ(m.columnGroups, 3); // ceil(300 / 128)
    EXPECT_EQ(m.acsNeeded, 3 * m.chain);
}

TEST(Mapper, DepthwiseDiagonalPacking)
{
    DwConv2d conv(256, 3, 1, 1);
    Tensor x({1, 256, 8, 8});
    conv.forward(x);
    const auto m = LayerMapper().mapLayer(conv, 0);
    // 14 kernels of Rf 9 per 128-row crossbar -> ceil(256/14) = 19 ACs.
    EXPECT_EQ(m.chain, 1);
    EXPECT_EQ(m.acsNeeded, 19);
    EXPECT_FALSE(m.needsAdc);
    EXPECT_EQ(m.dacRowsPerEval, 9 * 256);
    EXPECT_LT(m.utilization, 0.15); // paper: separable convs underutilize
}

TEST(Mapper, LinearLayerSinglePosition)
{
    Linear fc(512, 512);
    Tensor x({1, 512});
    fc.forward(x);
    const auto m = LayerMapper().mapLayer(fc, 0);
    EXPECT_EQ(m.positions, 1);
    EXPECT_EQ(m.chain, 4);
    EXPECT_EQ(m.columnGroups, 4);
    EXPECT_FALSE(m.needsAdc);
}

TEST(Mapper, RejectsNonWeightLayers)
{
    Linear fc(4, 4);
    Tensor x({1, 4});
    fc.forward(x);
    LayerMapper mapper;
    EXPECT_NO_FATAL_FAILURE(mapper.mapLayer(fc, 0));
}

TEST(Mapper, WholeNetworkMapping)
{
    Network net = buildVgg13(32, 3, 10, 1.0f, 1);
    Tensor x({1, 3, 32, 32});
    net.forward(x);
    const auto mapping = LayerMapper().map(net);
    EXPECT_EQ(mapping.layers.size(), 13u);
    EXPECT_TRUE(mapping.anyAdc()); // the 512-channel convs spill
    EXPECT_GT(mapping.totalCores(), 0);
    EXPECT_GT(mapping.totalAcs(), 0);
}

TEST(Mapper, VggOnlyLargeLayersNeedAdc)
{
    Network net = buildVgg13(32, 3, 10, 1.0f, 2);
    Tensor x({1, 3, 32, 32});
    net.forward(x);
    const auto mapping = LayerMapper().map(net);
    for (const auto &m : mapping.layers)
        EXPECT_EQ(m.needsAdc, m.rf > 2048) << m.name;
}


TEST(MapperOptions, RigidTilesUseMoreCrossbars)
{
    Conv2d conv(16, 64, 3, 1, 1); // Rf = 144: morphable chain = 2
    Tensor x({1, 16, 8, 8});
    conv.forward(x);

    const auto adaptive = LayerMapper().mapLayer(conv, 0);
    MapperOptions rigid;
    rigid.morphableTiles = false;
    const auto fixed = LayerMapper({}, rigid).mapLayer(conv, 0);

    EXPECT_EQ(adaptive.chain, 2);
    EXPECT_EQ(fixed.chain, 16);
    EXPECT_GT(fixed.acsNeeded, adaptive.acsNeeded);
    EXPECT_LT(fixed.utilization, adaptive.utilization);
}

TEST(MapperOptions, NoHierarchyForcesAdcOnChainedLayers)
{
    Conv2d conv(64, 64, 3, 1, 1); // Rf = 576: chain = 8
    Tensor x({1, 64, 8, 8});
    conv.forward(x);

    MapperOptions no_nu;
    no_nu.nuHierarchy = false;
    const auto m = LayerMapper({}, no_nu).mapLayer(conv, 0);
    EXPECT_TRUE(m.needsAdc);
    EXPECT_EQ(m.adcConversions,
              m.positions * static_cast<long long>(m.kernels) * m.chain);

    // Small-Rf layers (single AC) still avoid the ADC.
    Conv2d small(3, 16, 3, 1, 1);
    Tensor y({1, 3, 8, 8});
    small.forward(y);
    EXPECT_FALSE(LayerMapper({}, no_nu).mapLayer(small, 0).needsAdc);
}

class MapperRfSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(MapperRfSweep, ChainCoversReceptiveField)
{
    const int in_c = GetParam();
    Linear fc(in_c, 32);
    Tensor x({1, in_c});
    fc.forward(x);
    const auto m = LayerMapper().mapLayer(fc, 0);
    if (!m.needsAdc) {
        EXPECT_GE(m.chain * 128, m.rf);
        // chain is the smallest power of two covering Rf
        if (m.chain > 1)
            EXPECT_LT(m.chain / 2 * 128, m.rf);
    } else {
        EXPECT_GE(m.coreSplit * 2048, m.rf);
    }
    EXPECT_LE(m.utilization, 1.0);
    EXPECT_GT(m.utilization, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MapperRfSweep,
                         ::testing::Values(16, 128, 129, 256, 500, 1024,
                                           2048, 2049, 4096, 10000));

} // namespace
} // namespace nebula
