/**
 * @file
 * Tests for the Network container: forward orchestration, BN folding,
 * save/load, cloning-related state copies, and the model zoo geometry.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/network.hpp"
#include "nn/pooling.hpp"

namespace nebula {
namespace {

Network
tinyConvNet(uint64_t seed)
{
    Rng rng(seed);
    Network net("tiny");
    net.add<Conv2d>(1, 4, 3, 1, 1, false)->initKaiming(rng);
    net.add<BatchNorm2d>(4);
    net.add<Relu>();
    net.add<AvgPool2d>(2);
    net.add<Flatten>();
    net.add<Linear>(4 * 4 * 4, 10)->initKaiming(rng);
    return net;
}

TEST(Network, ForwardShapes)
{
    Network net = tinyConvNet(1);
    Tensor x({2, 1, 8, 8});
    Tensor y = net.forward(x);
    EXPECT_EQ(y.shape(), (std::vector<int>{2, 10}));
}

TEST(Network, ForwardCollectRecordsEveryLayer)
{
    Network net = tinyConvNet(2);
    Tensor x({1, 1, 8, 8});
    std::vector<Tensor> outputs;
    net.forwardCollect(x, outputs);
    EXPECT_EQ(outputs.size(), static_cast<size_t>(net.numLayers()));
    EXPECT_EQ(outputs.back().shape(), (std::vector<int>{1, 10}));
}

TEST(Network, WeightLayerIndices)
{
    Network net = tinyConvNet(3);
    const auto idx = net.weightLayerIndices();
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 0);
    EXPECT_EQ(idx[1], 5);
}

TEST(Network, ParameterCount)
{
    Network net = tinyConvNet(4);
    // conv (4*1*3*3) + bn (4+4) + fc (64*10 + 10)
    EXPECT_EQ(net.parameterCount(), 36 + 8 + 650);
}

TEST(Network, FoldBatchNormPreservesFunction)
{
    Network net = tinyConvNet(5);
    // Give BN non-trivial running stats by a few train passes.
    Rng rng(6);
    for (int i = 0; i < 5; ++i) {
        Tensor x({8, 1, 8, 8});
        x.randn(rng, 1.0f);
        net.forward(x, true);
    }

    Tensor probe({3, 1, 8, 8});
    probe.randn(rng, 0.7f);
    Tensor before = net.forward(probe, false);

    EXPECT_TRUE(net.hasBatchNorm());
    net.foldBatchNorm();
    EXPECT_FALSE(net.hasBatchNorm());
    EXPECT_EQ(net.numLayers(), 5); // BN removed

    Tensor after = net.forward(probe, false);
    ASSERT_TRUE(before.sameShape(after));
    for (long long i = 0; i < before.size(); ++i)
        EXPECT_NEAR(before[i], after[i], 1e-4f) << "i=" << i;
}

TEST(Network, SaveLoadRoundTrip)
{
    Network a = tinyConvNet(7);
    const std::string path = "/tmp/nebula_net_test.bin";
    ASSERT_TRUE(a.save(path));

    Network b = tinyConvNet(8); // different seed -> different weights
    Tensor probe({1, 1, 8, 8});
    Rng rng(9);
    probe.randn(rng);
    Tensor ya = a.forward(probe), yb = b.forward(probe);
    bool same = true;
    for (long long i = 0; i < ya.size(); ++i)
        same &= (ya[i] == yb[i]);
    EXPECT_FALSE(same);

    ASSERT_TRUE(b.load(path));
    Tensor yb2 = b.forward(probe);
    for (long long i = 0; i < ya.size(); ++i)
        EXPECT_FLOAT_EQ(ya[i], yb2[i]);
    std::remove(path.c_str());
}

TEST(Network, LoadRejectsWrongShape)
{
    Network a = tinyConvNet(10);
    const std::string path = "/tmp/nebula_net_test2.bin";
    ASSERT_TRUE(a.save(path));

    Rng rng(11);
    Network other("other");
    other.add<Linear>(4, 2)->initKaiming(rng);
    EXPECT_FALSE(other.load(path));
    std::remove(path.c_str());
}

TEST(Network, CopyStateFrom)
{
    Network a = tinyConvNet(12);
    Network b = tinyConvNet(13);
    b.copyStateFrom(a);
    Tensor probe({1, 1, 8, 8});
    Rng rng(14);
    probe.randn(rng);
    Tensor ya = a.forward(probe), yb = b.forward(probe);
    for (long long i = 0; i < ya.size(); ++i)
        EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(Network, CloneProducesIndependentLayer)
{
    Rng rng(15);
    Linear fc(4, 2);
    fc.initKaiming(rng);
    LayerPtr copy = fc.clone();
    auto *fc2 = static_cast<Linear *>(copy.get());
    fc2->weight()[0] += 1.0f;
    EXPECT_NE(fc.weight()[0], fc2->weight()[0]);
}

// -- Model zoo geometry ---------------------------------------------------

TEST(ModelZoo, PaperBenchmarksTable)
{
    const auto &rows = paperBenchmarks();
    ASSERT_EQ(rows.size(), 8u);
    EXPECT_EQ(rows[3].model, "VGG-13");
    EXPECT_NEAR(rows[3].snnAccuracy, 90.05, 1e-9);
    EXPECT_EQ(rows[2].timesteps, 500);
}

TEST(ModelZoo, Mlp3HasThreeWeightLayers)
{
    Network net = buildMlp3(16, 1, 10, 1);
    EXPECT_EQ(net.weightLayerIndices().size(), 3u);
    Tensor x({1, 1, 16, 16});
    EXPECT_EQ(net.forward(x).shape(), (std::vector<int>{1, 10}));
}

TEST(ModelZoo, Lenet5HasFiveWeightLayers)
{
    Network net = buildLenet5(28, 1, 10, 1);
    EXPECT_EQ(net.weightLayerIndices().size(), 5u);
    Tensor x({1, 1, 28, 28});
    EXPECT_EQ(net.forward(x).shape(), (std::vector<int>{1, 10}));
}

TEST(ModelZoo, Vgg13HasThirteenWeightLayers)
{
    Network net = buildVgg13(32, 3, 10, 0.25f, 1);
    EXPECT_EQ(net.weightLayerIndices().size(), 13u);
    Tensor x({1, 3, 32, 32});
    EXPECT_EQ(net.forward(x).shape(), (std::vector<int>{1, 10}));
}

TEST(ModelZoo, MobilenetHasTwentyEightWeightLayers)
{
    // stem + 13 * (dw + pw) + fc = 28 weight layers (paper depth 29
    // counts the input encoding layer as well).
    Network net = buildMobilenetV1(32, 3, 10, 0.25f, 1);
    EXPECT_EQ(net.weightLayerIndices().size(), 28u);
    Tensor x({1, 3, 32, 32});
    EXPECT_EQ(net.forward(x).shape(), (std::vector<int>{1, 10}));
}

TEST(ModelZoo, SvhnNetHasTwelveWeightLayers)
{
    Network net = buildSvhnNet(32, 3, 10, 0.25f, 1);
    EXPECT_EQ(net.weightLayerIndices().size(), 12u);
    Tensor x({1, 3, 32, 32});
    EXPECT_EQ(net.forward(x).shape(), (std::vector<int>{1, 10}));
}

TEST(ModelZoo, AlexNetHasEightWeightLayers)
{
    Network net = buildAlexNet(64, 3, 20, 0.25f, 1);
    EXPECT_EQ(net.weightLayerIndices().size(), 8u);
    Tensor x({1, 3, 64, 64});
    EXPECT_EQ(net.forward(x).shape(), (std::vector<int>{1, 20}));
}

TEST(ModelZoo, PaperModelsByName)
{
    for (const char *name :
         {"mlp3", "lenet5", "vgg13", "mobilenet", "svhn"}) {
        Network net = buildPaperModel(name);
        EXPECT_GT(net.numLayers(), 0) << name;
    }
}

TEST(ModelZoo, SummaryMentionsEveryLayer)
{
    Network net = buildMlp3(16, 1, 10, 1);
    const std::string s = net.summary();
    EXPECT_NE(s.find("linear(256->128)"), std::string::npos);
    EXPECT_NE(s.find("linear(64->10)"), std::string::npos);
}

} // namespace
} // namespace nebula
