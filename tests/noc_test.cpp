/**
 * @file
 * Mesh NoC tests: routing, latency, serialization/contention, energy.
 */

#include <gtest/gtest.h>

#include "noc/noc.hpp"

namespace nebula {
namespace {

NocConfig
smallMesh()
{
    NocConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.flitBits = 32;
    cfg.hopLatency = 1;
    return cfg;
}

TEST(Noc, ManhattanDistance)
{
    EXPECT_EQ(MeshNoc::manhattan({0, 0}, {3, 2}), 5);
    EXPECT_EQ(MeshNoc::manhattan({2, 2}, {2, 2}), 0);
}

TEST(Noc, SinglePacketLatency)
{
    MeshNoc noc(smallMesh());
    noc.inject({1, {0, 0}, {2, 1}, 32, 0});
    const auto traces = noc.drain();
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].hops, 3);
    // Each hop: 1 flit serialization + 1 hop latency = 2 cycles.
    EXPECT_EQ(traces[0].latency, 6);
}

TEST(Noc, SelfDeliveryIsFree)
{
    MeshNoc noc(smallMesh());
    noc.inject({1, {1, 1}, {1, 1}, 64, 5});
    const auto traces = noc.drain();
    EXPECT_EQ(traces[0].hops, 0);
    EXPECT_EQ(traces[0].latency, 0);
    EXPECT_DOUBLE_EQ(noc.dynamicEnergy(), 0.0);
}

TEST(Noc, MultiFlitSerialization)
{
    MeshNoc noc(smallMesh());
    // 128 bits over 32-bit flits -> 4 flits.
    noc.inject({1, {0, 0}, {1, 0}, 128, 0});
    const auto traces = noc.drain();
    EXPECT_EQ(traces[0].latency, 4 + 1);
}

TEST(Noc, ContentionSerializesSharedLink)
{
    MeshNoc noc(smallMesh());
    // Two packets share the (0,0)->(1,0) link at the same time.
    noc.inject({1, {0, 0}, {1, 0}, 32, 0});
    noc.inject({2, {0, 0}, {1, 0}, 32, 0});
    const auto traces = noc.drain();
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0].latency, 2);
    EXPECT_GT(traces[1].latency, traces[0].latency);
}

TEST(Noc, DisjointPathsDoNotContend)
{
    MeshNoc noc(smallMesh());
    noc.inject({1, {0, 0}, {1, 0}, 32, 0});
    noc.inject({2, {0, 3}, {1, 3}, 32, 0});
    const auto traces = noc.drain();
    EXPECT_EQ(traces[0].latency, traces[1].latency);
}

TEST(Noc, XyRoutingHopCount)
{
    MeshNoc noc(smallMesh());
    noc.inject({1, {3, 3}, {0, 0}, 32, 0});
    const auto traces = noc.drain();
    EXPECT_EQ(traces[0].hops, 6);
}

TEST(Noc, EnergyScalesWithHopsAndFlits)
{
    MeshNoc noc(smallMesh());
    noc.inject({1, {0, 0}, {1, 0}, 32, 0}); // 1 hop, 1 flit
    noc.drain();
    const double e1 = noc.dynamicEnergy();

    noc.reset();
    noc.inject({2, {0, 0}, {3, 0}, 128, 0}); // 3 hops, 4 flits
    noc.drain();
    EXPECT_NEAR(noc.dynamicEnergy() / e1, 12.0, 1e-9);
}

TEST(Noc, TransferEnergyMatchesAnalytic)
{
    MeshNoc noc(smallMesh());
    const double e = noc.transferEnergy({0, 0}, {2, 2}, 64);
    // 4 hops, 2 flits.
    EXPECT_NEAR(e, 4 * 2 * noc.config().energyPerFlitHop, 1e-18);
}

TEST(Noc, DrainDeliversEverything)
{
    MeshNoc noc(smallMesh());
    for (int i = 0; i < 50; ++i)
        noc.inject({i, {i % 4, (i / 4) % 4}, {3 - i % 4, 3 - (i / 4) % 4},
                    64, i});
    const auto traces = noc.drain();
    EXPECT_EQ(traces.size(), 50u);
    EXPECT_EQ(noc.delivered(), 50);
}

TEST(Noc, StatsAccumulate)
{
    MeshNoc noc(smallMesh());
    noc.inject({1, {0, 0}, {3, 3}, 32, 0});
    noc.drain();
    EXPECT_EQ(noc.stats().scalarAt("noc.hops").count(), 1u);
    EXPECT_DOUBLE_EQ(noc.stats().scalarAt("noc.hops").max(), 6.0);
}

TEST(Noc, RejectsOffMeshPackets)
{
    MeshNoc noc(smallMesh());
    EXPECT_DEATH({ noc.inject({1, {0, 0}, {9, 0}, 32, 0}); }, "off-mesh");
}

class NocMeshSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(NocMeshSizes, CornerToCornerScales)
{
    NocConfig cfg;
    cfg.width = cfg.height = GetParam();
    MeshNoc noc(cfg);
    noc.inject({1, {0, 0}, {cfg.width - 1, cfg.height - 1}, 32, 0});
    const auto traces = noc.drain();
    EXPECT_EQ(traces[0].hops, 2 * (GetParam() - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, NocMeshSizes, ::testing::Values(2, 4, 8, 14));

} // namespace
} // namespace nebula
