/**
 * @file
 * Tests for the observability layer: Chrome-trace well-formedness
 * (balanced begin/end pairs, monotonic per-thread timestamps, track
 * integrity under a multi-worker engine), root-span sampling, histogram
 * merge/quantile behavior, StatGroup CSV/JSON snapshots, the labeled
 * metrics registry and the leveled debug logging. The suite is run
 * under ThreadSanitizer in CI (NEBULA_SANITIZE=thread).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"
#include "runtime/replica.hpp"

namespace nebula {
namespace {

using obs::TraceEvent;
using obs::TraceSession;
using obs::TraceSpan;

/** Stop and discard any session a prior test (or NEBULA_TRACE) left. */
struct TraceQuiesce
{
    TraceQuiesce() { TraceSession::stop(); }
    ~TraceQuiesce() { TraceSession::stop(); }
};

/**
 * Structural validation of one thread track: every End matches the
 * category/name of the innermost open Begin, nothing is left open, and
 * timestamps never go backwards.
 */
void
expectWellFormed(const TraceSession::ThreadTrack &track)
{
    std::vector<const TraceEvent *> open;
    double last_ts = 0.0;
    for (const TraceEvent &event : track.events) {
        EXPECT_GE(event.tsUs, last_ts)
            << "timestamps must be monotonic within track " << track.name;
        last_ts = event.tsUs;
        if (event.phase == TraceEvent::Phase::Begin) {
            open.push_back(&event);
        } else if (event.phase == TraceEvent::Phase::End) {
            ASSERT_FALSE(open.empty())
                << "unmatched End in track " << track.name;
            EXPECT_STREQ(open.back()->name, event.name);
            EXPECT_STREQ(open.back()->category, event.category);
            open.pop_back();
        }
    }
    EXPECT_TRUE(open.empty())
        << open.size() << " unclosed span(s) in track " << track.name;
}

/**
 * Cheap JSON syntax sanity: brace/bracket balance outside string
 * literals. (CI additionally runs the real trace file through
 * python3 -m json.tool.)
 */
void
expectBalancedJson(const std::string &json)
{
    int braces = 0, brackets = 0;
    bool in_string = false, escaped = false;
    for (char c : json) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
            continue;
        }
        if (c == '"') {
            in_string = !in_string;
            continue;
        }
        if (in_string)
            continue;
        braces += (c == '{') - (c == '}');
        brackets += (c == '[') - (c == ']');
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

// -- Histogram quantiles and merging -------------------------------------

TEST(HistogramTest, QuantilesInterpolateAndClamp)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 1; i <= 100; ++i)
        h.sample(static_cast<double>(i));

    EXPECT_NEAR(h.p50(), 50.0, 1.5);
    EXPECT_NEAR(h.p95(), 95.0, 1.5);
    EXPECT_NEAR(h.p99(), 99.0, 1.5);
    // Quantiles never leave the observed range.
    EXPECT_GE(h.quantile(0.0), 1.0);
    EXPECT_LE(h.quantile(1.0), 100.0);
}

TEST(HistogramTest, EmptyAndSingleSample)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    h.sample(7.25);
    // One sample: every quantile is that sample (clamped to min/max).
    EXPECT_DOUBLE_EQ(h.p50(), 7.25);
    EXPECT_DOUBLE_EQ(h.p99(), 7.25);
}

TEST(HistogramTest, MergeSameShapeIsBinExact)
{
    Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10), all(0.0, 10.0, 10);
    for (int i = 0; i < 50; ++i) {
        const double v = (i * 7 % 100) / 10.0;
        (i % 2 ? a : b).sample(v);
        all.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_EQ(a.bins(), all.bins());
    EXPECT_DOUBLE_EQ(a.p95(), all.p95());
}

TEST(HistogramTest, MergeMismatchedShapeKeepsMoments)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 100.0, 5);
    a.sample(2.0);
    b.sample(50.0);
    b.sample(90.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 142.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 90.0);
}

TEST(StatGroupTest, HistogramsSurviveMergeAndSnapshot)
{
    StatGroup a("a"), b("b");
    a.histogram("lat", 0.0, 10.0, 10).sample(1.0);
    b.histogram("lat", 0.0, 10.0, 10).sample(9.0);
    b.histogram("extra", 0.0, 1.0, 4).sample(0.5);
    a.merge(b);

    ASSERT_TRUE(a.hasHistogram("lat"));
    EXPECT_EQ(a.histogramAt("lat").count(), 2u);
    ASSERT_TRUE(a.hasHistogram("extra"));
    EXPECT_EQ(a.histogramAt("extra").count(), 1u);

    a.scalar("requests").inc();
    const std::string csv = a.toCsv();
    EXPECT_NE(csv.find("scalar,requests"), std::string::npos);
    EXPECT_NE(csv.find("histogram,lat"), std::string::npos);

    const std::string json = a.toJson();
    expectBalancedJson(json);
    EXPECT_NE(json.find("\"lat\""), std::string::npos);
    // Deterministic: serializing twice gives identical bytes.
    EXPECT_EQ(json, a.toJson());
    EXPECT_EQ(csv, a.toCsv());
}

// -- Metrics registry ----------------------------------------------------

TEST(MetricsTest, LabeledNamesAreCanonical)
{
    EXPECT_EQ(obs::labeledName("m", {}), "m");
    EXPECT_EQ(obs::labeledName("m", {{"b", "2"}, {"a", "1"}}),
              "m{a=\"1\",b=\"2\"}");
    // Label order does not create distinct metrics.
    obs::MetricsRegistry reg("r");
    reg.counter("hits", {{"x", "1"}, {"y", "2"}}).inc();
    reg.counter("hits", {{"y", "2"}, {"x", "1"}}).inc();
    EXPECT_DOUBLE_EQ(reg.counterValue("hits", {{"x", "1"}, {"y", "2"}}),
                     2.0);
}

TEST(MetricsTest, CountersAreThreadSafe)
{
    obs::MetricsRegistry reg("r");
    obs::Counter &counter = reg.counter("n");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&counter] {
            for (int i = 0; i < 10000; ++i)
                counter.inc();
        });
    for (auto &thread : threads)
        thread.join();
    EXPECT_DOUBLE_EQ(counter.value(), 40000.0);
}

TEST(MetricsTest, SnapshotAndSerializationAreDeterministic)
{
    obs::MetricsRegistry reg("chipmetrics");
    reg.counter("evals").inc(5);
    reg.gauge("util", {{"layer", "0"}}).set(0.75);
    reg.observe("lat_ms", 3.0, 0.0, 10.0, 10);
    reg.observe("lat_ms", 7.0, 0.0, 10.0, 10);

    const StatGroup snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.scalarAt("evals").sum(), 5.0);
    EXPECT_DOUBLE_EQ(snap.scalarAt("util{layer=\"0\"}").sum(), 0.75);
    ASSERT_TRUE(snap.hasHistogram("lat_ms"));
    EXPECT_EQ(snap.histogramAt("lat_ms").count(), 2u);

    const std::string json = reg.toJson();
    expectBalancedJson(json);
    EXPECT_EQ(json, reg.toJson());
    // Names containing '"' are RFC-4180 quoted in the CSV (inner
    // quotes doubled), so label values cannot break the row format.
    EXPECT_NE(reg.toCsv().find("gauge,\"util{layer=\"\"0\"\"}\",0.75"),
              std::string::npos);

    reg.reset();
    EXPECT_DOUBLE_EQ(reg.counterValue("evals"), 0.0);
    EXPECT_EQ(reg.snapshot().histogramAt("lat_ms").count(), 0u);
}

// -- Leveled logging -----------------------------------------------------

/** Capture std::cerr for the scope of one assertion. */
class CerrCapture
{
  public:
    CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
    ~CerrCapture() { std::cerr.rdbuf(old_); }
    std::string text() const { return buffer_.str(); }

  private:
    std::ostringstream buffer_;
    std::streambuf *old_;
};

TEST(LoggingTest, DebugComponentsGateOutput)
{
    setDebugComponents("chip,noc");
    EXPECT_TRUE(debugEnabled("chip"));
    EXPECT_TRUE(debugEnabled("noc"));
    EXPECT_FALSE(debugEnabled("runtime"));

    {
        CerrCapture capture;
        NEBULA_DEBUG("chip", "evals=", 3);
        NEBULA_DEBUG("runtime", "should not appear");
        EXPECT_NE(capture.text().find("debug: [chip] evals=3"),
                  std::string::npos);
        EXPECT_EQ(capture.text().find("should not appear"),
                  std::string::npos);
    }

    setDebugComponents("all");
    EXPECT_TRUE(debugEnabled("anything"));
    setDebugComponents("");
    EXPECT_FALSE(debugEnabled("chip"));
}

TEST(LoggingTest, QuietSilencesEveryLevel)
{
    setDebugComponents("test");
    setLogQuiet(true);
    {
        CerrCapture capture;
        NEBULA_DEBUG("test", "quiet debug");
        NEBULA_INFORM("quiet info");
        NEBULA_WARN("quiet warn");
        EXPECT_TRUE(capture.text().empty()) << capture.text();
    }
    setLogQuiet(false);
    setDebugComponents("");
}

// -- Tracing -------------------------------------------------------------

TEST(TraceTest, SpansPairAndNest)
{
    TraceQuiesce quiesce;
    TraceSession::start();
    {
        TraceSpan outer("test", "outer");
        outer.arg("k", 1.0);
        TraceSpan inner("test", "inner");
        obs::recordInstant("test", "tick");
        obs::recordCounter("depth", 2.0);
    }
    auto session = TraceSession::stop();
    ASSERT_TRUE(session);
    const auto tracks = session->tracks();
    ASSERT_EQ(tracks.size(), 1u);
    expectWellFormed(tracks[0]);
    EXPECT_EQ(tracks[0].events.size(), 6u); // 2 B + 2 E + i + C

    std::ostringstream os;
    session->writeJson(os);
    expectBalancedJson(os.str());
    EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(os.str().find("\"ph\":\"B\""), std::string::npos);
}

TEST(TraceTest, DisabledSpansRecordNothing)
{
    TraceQuiesce quiesce;
    {
        // No session at all: spans are inert.
        TraceSpan span("test", "noop");
        EXPECT_FALSE(span.active());
    }
    TraceSession::start();
    {
        // Session active but the subsystem toggle is off.
        TraceSpan span("test", "gated", /*enabled=*/false);
        EXPECT_FALSE(span.active());
    }
    auto session = TraceSession::stop();
    EXPECT_EQ(session->eventCount(), 0u);
}

TEST(TraceTest, SamplingSuppressesWholeSubtrees)
{
    TraceQuiesce quiesce;
    obs::TraceConfig config;
    config.sampleEvery = 4;
    TraceSession::start(config);
    for (int i = 0; i < 16; ++i) {
        TraceSpan root("test", "root", true, /*sampled_root=*/true);
        TraceSpan child("test", "child");
        obs::recordInstant("test", "leaf");
    }
    auto session = TraceSession::stop();
    const auto tracks = session->tracks();
    ASSERT_EQ(tracks.size(), 1u);
    expectWellFormed(tracks[0]);
    // 16 roots sampled 1-in-4: 4 kept, each with B/E root, B/E child
    // and one instant.
    EXPECT_EQ(tracks[0].events.size(), 4u * 5u);
}

TEST(TraceTest, BufferCapDropsWholeSpans)
{
    TraceQuiesce quiesce;
    obs::TraceConfig config;
    config.maxEventsPerThread = 8;
    TraceSession::start(config);
    for (int i = 0; i < 100; ++i)
        TraceSpan span("test", "tight");
    auto session = TraceSession::stop();
    const auto tracks = session->tracks();
    ASSERT_EQ(tracks.size(), 1u);
    expectWellFormed(tracks[0]);
    EXPECT_GT(session->droppedEvents(), 0u);
    // End-side admission may overshoot the cap by open-span depth (1).
    EXPECT_LE(tracks[0].events.size(), 9u);
}

TEST(TraceTest, SessionRestartInvalidatesOldSpans)
{
    TraceQuiesce quiesce;
    TraceSession::start();
    {
        TraceSpan span("test", "stale");
        // Restart while the span is open: its End must not leak into
        // the new session.
        TraceSession::start();
    }
    auto session = TraceSession::stop();
    ASSERT_TRUE(session);
    EXPECT_EQ(session->eventCount(), 0u);
}

TEST(TraceTest, MultiWorkerEngineProducesSaneTracks)
{
    TraceQuiesce quiesce;
    SyntheticDigits data(24, 12, /*seed=*/3);
    Network net = buildMlp3(12, 1, 10, /*seed=*/7);
    const auto quant = quantizeNetwork(net, data.firstImages(16));

    TraceSession::start();
    {
        EngineConfig config;
        config.numWorkers = 3;
        InferenceEngine engine(config, makeAnnReplicaFactory(net, quant));
        std::vector<Tensor> images;
        for (int i = 0; i < data.size(); ++i)
            images.push_back(data.image(i));
        for (auto &future : engine.submitBatch(images))
            future.get();
        engine.shutdown();
    }
    auto session = TraceSession::stop();
    ASSERT_TRUE(session);

    const auto tracks = session->tracks();
    int worker_tracks = 0;
    uint64_t requests = 0;
    for (const auto &track : tracks) {
        expectWellFormed(track);
        if (track.name.rfind("worker", 0) == 0) {
            ++worker_tracks;
            for (const TraceEvent &event : track.events)
                requests += event.phase == TraceEvent::Phase::Begin &&
                            std::string(event.name) == "request";
        }
    }
    EXPECT_EQ(worker_tracks, 3);
    EXPECT_EQ(requests, 24u);

    std::ostringstream os;
    session->writeJson(os);
    expectBalancedJson(os.str());
}

} // namespace
} // namespace nebula
