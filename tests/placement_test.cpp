/**
 * @file
 * Placement + simulated-NoC-traffic tests (paper Fig. 6b mesh).
 */

#include <gtest/gtest.h>

#include "arch/placement.hpp"
#include "nn/models.hpp"

namespace nebula {
namespace {

NetworkMapping
mapModel(Network net, int channels, int spatial)
{
    Tensor x({1, channels, spatial, spatial});
    net.forward(x);
    return LayerMapper().map(net);
}

MeshNoc
chipNoc()
{
    NocConfig cfg;
    cfg.width = 14;
    cfg.height = 14;
    return MeshNoc(cfg);
}

TEST(Placer, AnnCoresLiveInFirstColumn)
{
    ChipPlacer placer;
    for (int i = 0; i < 14; ++i) {
        const NodeId node = placer.coreLocation(i, Mode::ANN);
        EXPECT_EQ(node.x, 0);
        EXPECT_EQ(node.y, i);
    }
    EXPECT_EQ(placer.coreBudget(Mode::ANN), 14);
    EXPECT_EQ(placer.coreBudget(Mode::SNN), 182);
}

TEST(Placer, SnnCoresAvoidAnnColumn)
{
    ChipPlacer placer;
    for (int i = 0; i < 182; ++i) {
        const NodeId node = placer.coreLocation(i, Mode::SNN);
        EXPECT_GE(node.x, 1);
        EXPECT_LT(node.x, 14);
        EXPECT_GE(node.y, 0);
        EXPECT_LT(node.y, 14);
    }
}

TEST(Placer, SnnLocationsAreDistinctWithinBudget)
{
    ChipPlacer placer;
    std::set<std::pair<int, int>> seen;
    for (int i = 0; i < 182; ++i) {
        const NodeId node = placer.coreLocation(i, Mode::SNN);
        EXPECT_TRUE(seen.insert({node.x, node.y}).second) << i;
    }
}

TEST(Placer, SmallNetworkFits)
{
    ChipPlacer placer;
    const auto mapping =
        mapModel(buildSvhnNet(32, 3, 10, 0.25f, 1), 3, 32);
    const auto placement = placer.place(mapping, Mode::SNN);
    EXPECT_TRUE(placement.fits);
    EXPECT_EQ(placement.layers.size(), mapping.layers.size());
    for (size_t i = 0; i < mapping.layers.size(); ++i)
        EXPECT_EQ(static_cast<long long>(placement.layers[i].cores.size()),
                  mapping.layers[i].coresNeeded);
}

TEST(Placer, HugeNetworkWrapsAndReportsIt)
{
    ChipPlacer placer;
    const auto mapping = mapModel(buildVgg13(32, 3, 10, 1.0f, 1), 3, 32);
    // Full VGG-13 needs more ANN cores than the 14 available.
    const auto placement = placer.place(mapping, Mode::ANN);
    EXPECT_FALSE(placement.fits);
    EXPECT_LE(placement.coresUsed, 14);
}

TEST(Traffic, DeliversEverything)
{
    ChipPlacer placer;
    const auto mapping =
        mapModel(buildSvhnNet(32, 3, 10, 0.25f, 1), 3, 32);
    const auto placement = placer.place(mapping, Mode::ANN);
    MeshNoc noc = chipNoc();
    const auto act = ActivityProfile::uniform(mapping.layers.size(), 0.5);
    const auto stats =
        simulateInferenceTraffic(mapping, placement, noc, Mode::ANN, act);
    EXPECT_GT(stats.packets, 0);
    EXPECT_GT(stats.flits, 0);
    EXPECT_GT(stats.energy, 0.0);
    EXPECT_GT(stats.avgHops, 0.0);
    EXPECT_GE(stats.worstLatency, static_cast<long long>(stats.avgLatency));
}

TEST(Traffic, SnnRoundsScaleWithTimesteps)
{
    ChipPlacer placer;
    const auto mapping =
        mapModel(buildSvhnNet(32, 3, 10, 0.25f, 1), 3, 32);
    const auto placement = placer.place(mapping, Mode::SNN);
    const auto act = ActivityProfile::decaying(mapping.layers.size());

    MeshNoc noc_a = chipNoc();
    const auto t10 = simulateInferenceTraffic(mapping, placement, noc_a,
                                              Mode::SNN, act, 10);
    MeshNoc noc_b = chipNoc();
    const auto t20 = simulateInferenceTraffic(mapping, placement, noc_b,
                                              Mode::SNN, act, 20);
    EXPECT_EQ(t20.packets, 2 * t10.packets);
    EXPECT_NEAR(t20.energy / t10.energy, 2.0, 1e-6);
}

TEST(Traffic, SpikeTrafficLighterThanAnn)
{
    // Binary sparse spikes move far fewer bits than 4-bit dense maps.
    ChipPlacer placer;
    const auto mapping =
        mapModel(buildSvhnNet(32, 3, 10, 0.25f, 1), 3, 32);
    const auto act = ActivityProfile::uniform(mapping.layers.size(), 0.05);

    const auto ann_placement = placer.place(mapping, Mode::ANN);
    MeshNoc noc_a = chipNoc();
    const auto ann = simulateInferenceTraffic(mapping, ann_placement,
                                              noc_a, Mode::ANN, act);
    const auto snn_placement = placer.place(mapping, Mode::SNN);
    MeshNoc noc_b = chipNoc();
    const auto snn = simulateInferenceTraffic(mapping, snn_placement,
                                              noc_b, Mode::SNN, act, 1);
    EXPECT_LT(snn.flits, ann.flits);
}

TEST(Traffic, SpilledLayersSendPartialSums)
{
    ChipPlacer placer;
    // Full-width VGG has spilled layers with multi-core kernels.
    const auto mapping = mapModel(buildVgg13(32, 3, 10, 1.0f, 1), 3, 32);
    const auto placement = placer.place(mapping, Mode::SNN);
    const auto act = ActivityProfile::decaying(mapping.layers.size());

    MeshNoc noc = chipNoc();
    const auto with_spills =
        simulateInferenceTraffic(mapping, placement, noc, Mode::SNN, act);

    // Re-run with the spills suppressed to isolate their contribution.
    NetworkMapping no_spill = mapping;
    for (auto &layer : no_spill.layers)
        layer.needsAdc = false;
    MeshNoc noc2 = chipNoc();
    const auto without =
        simulateInferenceTraffic(no_spill, placement, noc2, Mode::SNN,
                                 act);
    EXPECT_GT(with_spills.packets, without.packets);
}

TEST(Traffic, DeterministicGivenSamePlacement)
{
    ChipPlacer placer;
    const auto mapping =
        mapModel(buildSvhnNet(32, 3, 10, 0.25f, 1), 3, 32);
    const auto placement = placer.place(mapping, Mode::SNN);
    const auto act = ActivityProfile::decaying(mapping.layers.size());
    MeshNoc noc_a = chipNoc(), noc_b = chipNoc();
    const auto a = simulateInferenceTraffic(mapping, placement, noc_a,
                                            Mode::SNN, act, 5);
    const auto b = simulateInferenceTraffic(mapping, placement, noc_b,
                                            Mode::SNN, act, 5);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_DOUBLE_EQ(a.energy, b.energy);
    EXPECT_EQ(a.worstLatency, b.worstLatency);
}

} // namespace
} // namespace nebula
