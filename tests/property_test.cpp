/**
 * @file
 * Property-based tests for the quantizer and the Poisson rate encoder:
 * randomized inputs, invariants instead of fixed expectations. Every
 * case runs under a SCOPED_TRACE carrying its seed so a failing draw is
 * reproducible from the log line alone.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "nn/quantize.hpp"
#include "snn/encoder.hpp"

namespace nebula {
namespace {

constexpr uint64_t kSeedBase = 0x9e55ull;

Tensor
randomTensor(Rng &rng, int size, double scale)
{
    Tensor t({size});
    for (long long i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.uniform(-scale, scale));
    return t;
}

TEST(QuantizerProperty, SymmetricQuantizeStaysOnGridWithinClip)
{
    for (int c = 0; c < 200; ++c) {
        const uint64_t seed = kSeedBase + static_cast<uint64_t>(c);
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        Rng rng(seed);
        const int size = rng.uniformInt(1, 300);
        const double scale = rng.uniform(0.01, 50.0);
        const float clip =
            static_cast<float>(rng.uniform(0.05, 1.5) * scale);
        const int levels = 1 << rng.uniformInt(1, 6); // 2..64 levels
        Tensor t = randomTensor(rng, size, scale);
        const Tensor original = t;

        quantizeTensorSymmetric(t, clip, levels);

        const float step = 2.0f * clip / (levels - 1);
        for (long long i = 0; i < t.size(); ++i) {
            // Bounded by the clip range.
            EXPECT_LE(std::abs(t[i]), clip * (1.0f + 1e-5f))
                << "element " << i << " escaped the clip range";
            // On the uniform level grid.
            const float q = (t[i] + clip) / step;
            EXPECT_NEAR(q, std::round(q), 1e-3)
                << "element " << i << " off the level grid";
            // Round-trip error bounded by half a step (clipped values
            // may move farther, but never beyond the clip point).
            const float clipped =
                std::clamp(original[i], -clip, clip);
            EXPECT_LE(std::abs(t[i] - clipped),
                      0.5f * step + 1e-4f * clip)
                << "element " << i << " quantized past half a step";
        }
    }
}

TEST(QuantizerProperty, QuantizationIsIdempotent)
{
    for (int c = 0; c < 100; ++c) {
        const uint64_t seed = kSeedBase + 1000 + static_cast<uint64_t>(c);
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        Rng rng(seed);
        Tensor t = randomTensor(rng, rng.uniformInt(1, 200), 2.0);
        const float clip = static_cast<float>(rng.uniform(0.1, 2.0));
        const int levels = 16;

        quantizeTensorSymmetric(t, clip, levels);
        Tensor again = t;
        quantizeTensorSymmetric(again, clip, levels);
        for (long long i = 0; i < t.size(); ++i)
            EXPECT_EQ(t[i], again[i]) << "requantization moved element "
                                      << i;
    }
}

TEST(QuantizerProperty, AbsPercentileBoundsAndMonotonicity)
{
    for (int c = 0; c < 100; ++c) {
        const uint64_t seed = kSeedBase + 2000 + static_cast<uint64_t>(c);
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        Rng rng(seed);
        Tensor t = randomTensor(rng, rng.uniformInt(1, 400),
                                rng.uniform(0.1, 10.0));
        float max_abs = 0.0f;
        for (long long i = 0; i < t.size(); ++i)
            max_abs = std::max(max_abs, std::abs(t[i]));

        // p = 1 is the max; the percentile is monotone in p and never
        // exceeds the max magnitude.
        EXPECT_FLOAT_EQ(absPercentile(t, 1.0), max_abs);
        float prev = 0.0f;
        for (double p : {0.1, 0.5, 0.9, 0.99, 1.0}) {
            const float v = absPercentile(t, p);
            EXPECT_GE(v, prev) << "percentile not monotone at p=" << p;
            EXPECT_LE(v, max_abs);
            prev = v;
        }
    }
}

TEST(EncoderProperty, SeedDeterminismAndStreamIndependence)
{
    for (int c = 0; c < 50; ++c) {
        const uint64_t seed = kSeedBase + 3000 + static_cast<uint64_t>(c);
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        Rng rng(seed);
        Tensor image({rng.uniformInt(1, 12), rng.uniformInt(1, 12)});
        for (long long i = 0; i < image.size(); ++i)
            image[i] = static_cast<float>(rng.uniform(0.0, 1.0));

        PoissonEncoder a(1.0, seed), b(1.0, seed);
        for (int t = 0; t < 4; ++t) {
            const Tensor sa = a.encode(image);
            const Tensor sb = b.encode(image);
            ASSERT_EQ(sa.size(), sb.size());
            for (long long i = 0; i < sa.size(); ++i) {
                EXPECT_EQ(sa[i], sb[i])
                    << "same-seed encoders diverged at step " << t;
                EXPECT_TRUE(sa[i] == 0.0f || sa[i] == 1.0f)
                    << "non-binary spike";
            }
        }

        // reset() restarts the train; a different seed changes it.
        a.reset();
        const Tensor replay = a.encode(image);
        PoissonEncoder fresh(1.0, seed);
        const Tensor first = fresh.encode(image);
        for (long long i = 0; i < replay.size(); ++i)
            EXPECT_EQ(replay[i], first[i]);
    }
}

TEST(EncoderProperty, SpikeRateTracksIntensity)
{
    // Over many timesteps the empirical rate of each pixel must track
    // intensity * rate_scale (law of large numbers; 6-sigma band keeps
    // the flake probability negligible while still pinning the slope).
    for (int c = 0; c < 10; ++c) {
        const uint64_t seed = kSeedBase + 4000 + static_cast<uint64_t>(c);
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        Rng rng(seed);
        const double rate_scale = rng.uniform(0.2, 1.0);
        const std::vector<float> intensities = {0.0f, 0.1f, 0.35f, 0.7f,
                                                1.0f};
        Tensor image({static_cast<int>(intensities.size())});
        for (size_t i = 0; i < intensities.size(); ++i)
            image[static_cast<long long>(i)] = intensities[i];

        PoissonEncoder encoder(rate_scale, seed);
        const int steps = 4000;
        std::vector<double> counts(intensities.size(), 0.0);
        for (int t = 0; t < steps; ++t) {
            const Tensor spikes = encoder.encode(image);
            for (size_t i = 0; i < intensities.size(); ++i)
                counts[i] += spikes[static_cast<long long>(i)];
        }
        for (size_t i = 0; i < intensities.size(); ++i) {
            const double p =
                std::clamp(rate_scale * intensities[i], 0.0, 1.0);
            const double sigma = std::sqrt(p * (1.0 - p) / steps);
            EXPECT_NEAR(counts[i] / steps, p, 6.0 * sigma + 1e-9)
                << "pixel " << i << " rate off its expectation";
        }
        // Monotone: brighter pixels never spike less (statistically).
        for (size_t i = 1; i < intensities.size(); ++i)
            EXPECT_GE(counts[i] + 3.0 * std::sqrt(steps * 0.25),
                      counts[i - 1]);
    }
}

TEST(EncoderProperty, AllEncodeFormsShareOneStream)
{
    // encode(), encodeInto(), encodeActive(image) and the precomputed
    // buildPlan()+encodeActive(plan) form must produce the identical
    // spike train from the same seed: each consumes one uniform draw
    // per pixel with probability strictly inside (0, 1) and none for
    // zero or saturated pixels. The images deliberately mix exact
    // zeros, in-range, saturated (>= 1) and negative pixels so every
    // short-circuit is exercised.
    for (int c = 0; c < 100; ++c) {
        const uint64_t seed = kSeedBase + 5000 + static_cast<uint64_t>(c);
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        Rng rng(seed);
        Tensor image({rng.uniformInt(1, 20), rng.uniformInt(1, 20)});
        for (long long i = 0; i < image.size(); ++i) {
            switch (rng.uniformInt(0, 3)) {
            case 0: image[i] = 0.0f; break;
            case 1: image[i] = static_cast<float>(rng.uniform(0.0, 1.0));
                    break;
            case 2: image[i] = static_cast<float>(rng.uniform(1.0, 2.0));
                    break;
            default: image[i] = static_cast<float>(rng.uniform(-1.0, 0.0));
                     break;
            }
        }
        const double rate_scale = rng.uniform(0.3, 1.0);

        PoissonEncoder dense(rate_scale, seed);
        PoissonEncoder into(rate_scale, seed);
        PoissonEncoder sparse(rate_scale, seed);
        PoissonEncoder planned(rate_scale, seed);
        PoissonEncoder::EncodePlan plan;
        planned.buildPlan(image, plan);

        Tensor into_buf;
        std::vector<int> active, plan_active;
        for (int t = 0; t < 6; ++t) {
            const Tensor spikes = dense.encode(image);
            into.encodeInto(image, into_buf);
            sparse.encodeActive(image, active);
            planned.encodeActive(plan, plan_active);

            ASSERT_EQ(into_buf.size(), spikes.size());
            std::vector<int> dense_active;
            for (long long i = 0; i < spikes.size(); ++i) {
                EXPECT_EQ(into_buf[i], spikes[i])
                    << "encodeInto diverged at step " << t;
                if (spikes[i] != 0.0f)
                    dense_active.push_back(static_cast<int>(i));
            }
            EXPECT_EQ(active, dense_active)
                << "encodeActive(image) diverged at step " << t;
            EXPECT_EQ(plan_active, dense_active)
                << "encodeActive(plan) diverged at step " << t;
        }
    }
}

} // namespace
} // namespace nebula
