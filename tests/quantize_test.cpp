/**
 * @file
 * Quantization pipeline tests (paper Sec. IV-C / Fig. 9) and the
 * Sec. IV-D weight-noise study plumbing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/datasets.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"

namespace nebula {
namespace {

TEST(Percentile, MaxAndMedian)
{
    Tensor t({5}, {-4.0f, 1.0f, -2.0f, 3.0f, 0.0f});
    EXPECT_FLOAT_EQ(absPercentile(t, 1.0), 4.0f);
    EXPECT_FLOAT_EQ(absPercentile(t, 0.0), 0.0f);
    EXPECT_FLOAT_EQ(absPercentile(t, 0.5), 2.0f);
}

TEST(QuantizeTensor, SixteenLevelGrid)
{
    Tensor t({4}, {0.93f, -0.41f, 0.08f, -1.5f});
    quantizeTensorSymmetric(t, 1.0f, 16);
    // All values must be on the 16-level grid spanning [-1, 1].
    const float step = 2.0f / 15.0f;
    for (long long i = 0; i < t.size(); ++i) {
        const float k = (t[i] + 1.0f) / step;
        EXPECT_NEAR(k, std::round(k), 1e-4f) << "i=" << i;
        EXPECT_LE(std::abs(t[i]), 1.0f + 1e-6f);
    }
}

TEST(QuantizeTensor, ErrorBoundedByHalfStep)
{
    Rng rng(1);
    Tensor t({1000});
    t.uniform(rng, -1.0f, 1.0f);
    Tensor q = t;
    quantizeTensorSymmetric(q, 1.0f, 16);
    const float half_step = 1.0f / 15.0f;
    for (long long i = 0; i < t.size(); ++i)
        EXPECT_LE(std::abs(q[i] - t[i]), half_step + 1e-6f);
}

TEST(QuantizeTensor, TwoLevelsIsSignFunction)
{
    Tensor t({4}, {0.7f, -0.7f, 0.1f, -0.1f});
    quantizeTensorSymmetric(t, 1.0f, 2);
    EXPECT_FLOAT_EQ(t[0], 1.0f);
    EXPECT_FLOAT_EQ(t[1], -1.0f);
}

TEST(QuantizeTensor, ZeroClipZeroes)
{
    Tensor t({3}, {1.0f, -2.0f, 3.0f});
    quantizeTensorSymmetric(t, 0.0f, 16);
    for (long long i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Calibration, CeilingsAreDescendingFromActivations)
{
    SyntheticDigits data(64, 12, 9);
    Network net = buildMlp3(12, 1, 10, 3);
    Tensor calibration = data.firstImages(32);
    const auto ceilings = calibrateActivations(net, calibration);
    ASSERT_EQ(ceilings.size(), static_cast<size_t>(net.numLayers()));
    for (float c : ceilings)
        EXPECT_GT(c, 0.0f);
}

TEST(QuantizeNetwork, ReplacesRelusAndQuantizesWeights)
{
    SyntheticDigits data(64, 12, 10);
    Network net = buildMlp3(12, 1, 10, 4);
    const auto result = quantizeNetwork(net, data.firstImages(32), 16, 16);

    // 3 weight layers recorded.
    ASSERT_EQ(result.layers.size(), 3u);
    for (const auto &info : result.layers) {
        EXPECT_GT(info.weightMax, 0.0f);
        EXPECT_GT(info.actCeiling, 0.0f);
    }

    // No plain ReLU remains.
    for (int i = 0; i < net.numLayers(); ++i)
        EXPECT_NE(net.layer(i).kind(), LayerKind::Relu);
}

TEST(QuantizeNetwork, AccuracyNearFloatAt16Levels)
{
    SyntheticDigits train_set(1000, 16, 11);
    SyntheticDigits test_set(300, 16, 12);

    Network net = buildMlp3(16, 1, 10, 5);
    TrainConfig cfg;
    cfg.epochs = 5;
    SgdTrainer trainer(cfg);
    trainer.train(net, train_set);
    const double float_acc = evaluateAccuracy(net, test_set);

    const Tensor calibration = train_set.firstImages(64);
    quantizeNetwork(net, calibration, 16, 16);
    const double quant_acc = evaluateAccuracy(net, test_set);

    // Paper Fig. 9: 16 weight levels are accuracy-competitive.
    EXPECT_GT(quant_acc, float_acc - 0.05);
}

TEST(QuantizeNetwork, AccuracyDegradesMonotonicallyOnAverage)
{
    SyntheticDigits train_set(1000, 16, 13);
    SyntheticDigits test_set(300, 16, 14);

    Network base = buildMlp3(16, 1, 10, 6);
    TrainConfig cfg;
    cfg.epochs = 5;
    SgdTrainer trainer(cfg);
    trainer.train(base, train_set);
    const std::string path = "/tmp/nebula_quant_sweep.bin";
    ASSERT_TRUE(base.save(path));
    const Tensor calibration = train_set.firstImages(64);

    // Accuracy at 2 levels should be clearly below accuracy at 16.
    auto acc_at = [&](int levels) {
        Network net = buildMlp3(16, 1, 10, 6);
        EXPECT_TRUE(net.load(path));
        quantizeNetwork(net, calibration, levels, 16);
        return evaluateAccuracy(net, test_set);
    };
    const double acc2 = acc_at(2);
    const double acc16 = acc_at(16);
    EXPECT_GT(acc16, acc2 - 0.02);
    EXPECT_GT(acc16, 0.8);
    std::remove(path.c_str());
}

TEST(WeightNoise, TenPercentCostsLittleAccuracy)
{
    // Sec. IV-D: 10% multiplicative weight noise costs <~1-3% accuracy
    // on a quantized model (we allow a looser bound for the small MLP).
    SyntheticDigits train_set(1000, 16, 15);
    SyntheticDigits test_set(300, 16, 16);

    Network net = buildMlp3(16, 1, 10, 7);
    TrainConfig cfg;
    cfg.epochs = 5;
    SgdTrainer trainer(cfg);
    trainer.train(net, train_set);
    quantizeNetwork(net, train_set.firstImages(64), 16, 16);
    const double clean = evaluateAccuracy(net, test_set);

    injectWeightNoise(net, 0.10, 77);
    const double noisy = evaluateAccuracy(net, test_set);
    EXPECT_GT(noisy, clean - 0.08);
}

TEST(WeightNoise, ChangesWeights)
{
    Network net = buildMlp3(12, 1, 10, 8);
    auto params = net.parameters();
    const float before = (*params[0])[0];
    injectWeightNoise(net, 0.2, 5);
    EXPECT_NE((*params[0])[0], before);
}


TEST(QuantizePerChannel, ChannelsGetIndependentRanges)
{
    // One channel with large weights, one with tiny weights: per-channel
    // quantization must preserve the tiny channel's resolution.
    Rng rng(21);
    Network net("pc");
    auto *fc = net.add<Linear>(4, 2, false);
    // Channel 0: weights ~1.0; channel 1: weights ~0.01.
    for (int j = 0; j < 4; ++j) {
        fc->weight()[j] = 1.0f - 0.1f * j;
        fc->weight()[4 + j] = 0.01f - 0.001f * j;
    }
    net.add<Relu>();

    Tensor calibration({4, 4});
    calibration.uniform(rng, 0.0f, 1.0f);
    quantizeNetwork(net, calibration, 16, 16, 0.999, 1.0,
                    /*per_channel=*/true);

    // The tiny channel must not collapse to zero.
    int nonzero = 0;
    for (int j = 0; j < 4; ++j)
        nonzero += (fc->weight()[4 + j] != 0.0f);
    EXPECT_GE(nonzero, 3);
}

TEST(QuantizePerChannel, PerLayerCollapsesTinyChannel)
{
    // Contrast case: per-layer quantization crushes the small channel.
    Rng rng(22);
    Network net("pl");
    auto *fc = net.add<Linear>(4, 2, false);
    for (int j = 0; j < 4; ++j) {
        fc->weight()[j] = 1.0f;
        fc->weight()[4 + j] = 0.01f;
    }
    net.add<Relu>();
    Tensor calibration({4, 4});
    calibration.uniform(rng, 0.0f, 1.0f);
    quantizeNetwork(net, calibration, 16, 16, 0.999, 1.0,
                    /*per_channel=*/false);
    // The even 16-level grid has no zero state: the tiny weights all
    // snap to the +-step/2 grid point nearest zero and lose their
    // relative structure entirely.
    const float half_step = 1.0f / 15.0f;
    for (int j = 0; j < 4; ++j)
        EXPECT_NEAR(std::abs(fc->weight()[4 + j]), half_step, 1e-4f);
}

TEST(FineTune, RecoversQuantizationLoss)
{
    SyntheticDigits train_set(800, 16, 61);
    SyntheticDigits test_set(200, 16, 62);
    Network net = buildMlp3(16, 1, 10, 63);
    TrainConfig cfg;
    cfg.epochs = 5;
    SgdTrainer trainer(cfg);
    trainer.train(net, train_set);

    // Coarse quantization to create a visible loss.
    const auto quant = quantizeNetwork(net, train_set.firstImages(64), 4,
                                       16);
    const double before = evaluateAccuracy(net, test_set);
    const double tuned_train_acc =
        fineTuneQuantized(net, train_set, quant, 2, 0.02);
    const double after = evaluateAccuracy(net, test_set);
    EXPECT_GE(after, before - 0.02);
    EXPECT_GT(tuned_train_acc, 0.5);

    // Weights must still be on a quantized grid per channel.
    const auto idx = net.weightLayerIndices();
    Tensor &w = *net.layer(idx[0]).parameters()[0];
    // (sanity: values bounded)
    EXPECT_LE(w.maxAbs(), 10.0f);
}

} // namespace
} // namespace nebula
