/**
 * @file
 * Tests for the reliability subsystem: fault-map sampling (determinism,
 * rate nesting), the crossbar mitigation flow (write-verify convergence,
 * spare-column repair), the legacy VariabilityModel wrapper, chip-level
 * plumbing and the campaign runner.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/chip.hpp"
#include "circuit/crossbar.hpp"
#include "device/variability.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/datasets.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/quantize.hpp"
#include "reliability/campaign.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/mitigation.hpp"

namespace nebula {
namespace {

bool
sameFault(const CellFault &a, const CellFault &b)
{
    return a.kind == b.kind && a.drift == b.drift && a.hard == b.hard &&
           a.decay == b.decay;
}

bool
sameMap(const FaultMap &a, const FaultMap &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    for (int r = 0; r < a.rows(); ++r)
        if (a.rowOpen(r) != b.rowOpen(r))
            return false;
    for (int c = 0; c < a.cols(); ++c)
        if (a.colOpen(c) != b.colOpen(c))
            return false;
    for (int r = 0; r < a.rows(); ++r)
        for (int c = 0; c < a.cols(); ++c)
            if (!sameFault(a.cell(r, c), b.cell(r, c)))
                return false;
    return true;
}

TEST(FaultModel, SamplingIsDeterministic)
{
    const StuckAtFaultModel model(0.05);
    FaultMap a(32, 24), b(32, 24);
    model.sampleInto(a, 123);
    model.sampleInto(b, 123);
    EXPECT_GT(a.cellFaultCount(), 0);
    EXPECT_TRUE(sameMap(a, b));

    FaultMap c(32, 24);
    model.sampleInto(c, 124);
    EXPECT_FALSE(sameMap(a, c));
}

TEST(FaultModel, CloneSamplesIdentically)
{
    const StuckAtFaultModel model(0.03, 0.7, 0.4);
    const auto copy = model.clone();
    FaultMap a(16, 16), b(16, 16);
    model.sampleInto(a, 9);
    copy->sampleInto(b, 9);
    EXPECT_TRUE(sameMap(a, b));
}

TEST(FaultModel, MapsNestAcrossRates)
{
    // Counter-based sampling: the faults at a low rate must be a subset
    // of the faults at a higher rate (same seed), with identical
    // polarity/hardness, so damage is monotone along a rate sweep.
    const uint64_t seed = 77;
    const StuckAtFaultModel low(0.02), high(0.08);
    FaultMap a(48, 40), b(48, 40);
    low.sampleInto(a, seed);
    high.sampleInto(b, seed);

    ASSERT_GT(a.cellFaultCount(), 0);
    EXPECT_GT(b.cellFaultCount(), a.cellFaultCount());
    for (int r = 0; r < a.rows(); ++r)
        for (int c = 0; c < a.cols(); ++c)
            if (a.cell(r, c).faulty()) {
                EXPECT_TRUE(sameFault(a.cell(r, c), b.cell(r, c)));
            }
}

TEST(FaultModel, SamplingIsOrderIndependentOfGeometry)
{
    // A cell's fault depends only on (seed, row, col): a larger map
    // agrees with a smaller one on the shared prefix.
    const StuckAtFaultModel model(0.1);
    FaultMap small(8, 8), large(16, 12);
    model.sampleInto(small, 5);
    model.sampleInto(large, 5);
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            EXPECT_TRUE(sameFault(small.cell(r, c), large.cell(r, c)));
}

TEST(FaultModel, CompositeOverlaysMembers)
{
    CompositeFaultModel composite;
    composite.add(std::make_unique<StuckAtFaultModel>(0.05));
    composite.add(std::make_unique<LineOpenFaultModel>(0.0, 0.2));
    FaultMap map(32, 32);
    composite.sampleInto(map, 3);

    int stuck = 0, open_cols = 0;
    for (int r = 0; r < map.rows(); ++r)
        for (int c = 0; c < map.cols(); ++c)
            stuck += map.cell(r, c).stuck();
    for (int c = 0; c < map.cols(); ++c)
        open_cols += map.colOpen(c);
    EXPECT_GT(stuck, 0);
    EXPECT_GT(open_cols, 0);
}

TEST(FaultModel, DeriveFaultSeedDecorrelates)
{
    EXPECT_NE(deriveFaultSeed(1, 0), deriveFaultSeed(1, 1));
    EXPECT_NE(deriveFaultSeed(1, 0), deriveFaultSeed(2, 0));
    EXPECT_EQ(deriveFaultSeed(9, 4), deriveFaultSeed(9, 4));
}

TEST(FaultMap, ColumnDefectCountFollowsMitigation)
{
    FaultMap map(8, 4);
    map.cell(0, 0).kind = FaultKind::StuckLow; // soft
    map.cell(1, 0).kind = FaultKind::StuckHigh;
    map.cell(1, 0).hard = true;
    map.cell(2, 0).kind = FaultKind::Drift;
    map.cell(2, 0).drift = 2;
    map.cell(3, 0).kind = FaultKind::Decay;
    map.cell(3, 0).decay = 0.5f;

    // Open-loop: soft stuck + drift are uncorrectable too (decay is a
    // post-programming effect either way and never counts).
    EXPECT_EQ(map.columnDefectCount(0, /*write_verify=*/false), 3);
    // Closed loop can fix soft stuck and drift; only the hard cell stays.
    EXPECT_EQ(map.columnDefectCount(0, /*write_verify=*/true), 1);

    map.setColOpen(1);
    EXPECT_EQ(map.columnDefectCount(1, true), map.rows());
    EXPECT_EQ(map.columnFaultCount(1), map.rows());
    EXPECT_EQ(map.cellFaultCount(), 4); // opens not included
}

/** Small crossbar with a hand-built fault map programmed open loop. */
CrossbarArray
faultyCrossbar(int rows, int cols, const FaultMap &map,
               const std::vector<float> &weights, int spares = 0,
               const ProgrammingConfig &config = {})
{
    CrossbarParams p;
    p.rows = rows;
    p.cols = cols;
    p.spareCols = spares;
    CrossbarArray xbar(p);
    xbar.injectFaults(map);
    xbar.program(weights, config);
    return xbar;
}

TEST(CrossbarFaults, StuckCellsIgnoreProgramming)
{
    FaultMap map(4, 3);
    map.cell(0, 0).kind = FaultKind::StuckHigh;
    map.cell(1, 1).kind = FaultKind::StuckLow;
    const std::vector<float> w(4 * 3, 0.2f);
    CrossbarArray xbar = faultyCrossbar(4, 3, map, w);

    EXPECT_NEAR(xbar.weightAt(0, 0), 1.0, 1e-12);  // pinned at G_max
    EXPECT_NEAR(xbar.weightAt(1, 1), -1.0, 1e-12); // pinned at G_min
    // A healthy neighbour still lands on the quantized target.
    const int top = xbar.params().levels - 1;
    const int level =
        static_cast<int>(std::lround((0.2 + 1.0) / 2.0 * top));
    EXPECT_NEAR(xbar.weightAt(2, 2), 2.0 * level / top - 1.0, 1e-12);
}

TEST(CrossbarFaults, DriftShiftsDiscreteLevels)
{
    FaultMap map(2, 2);
    map.cell(0, 0).kind = FaultKind::Drift;
    map.cell(0, 0).drift = 2;
    const std::vector<float> w(2 * 2, 0.0f);
    CrossbarArray xbar = faultyCrossbar(2, 2, map, w);

    const int top = xbar.params().levels - 1;
    const int level = static_cast<int>(std::lround(0.5 * top));
    EXPECT_NEAR(xbar.weightAt(0, 0), 2.0 * (level + 2) / top - 1.0, 1e-12);
    EXPECT_NEAR(xbar.weightAt(1, 1), 2.0 * level / top - 1.0, 1e-12);
}

TEST(CrossbarFaults, DecayRelaxesTowardMidpoint)
{
    FaultMap map(2, 2);
    map.cell(0, 0).kind = FaultKind::Decay;
    map.cell(0, 0).decay = 0.5f;
    const std::vector<float> w(2 * 2, 1.0f);
    CrossbarArray xbar = faultyCrossbar(2, 2, map, w);

    EXPECT_NEAR(xbar.weightAt(0, 0), 0.5, 1e-9);
    EXPECT_NEAR(xbar.weightAt(1, 1), 1.0, 1e-12);
}

TEST(CrossbarFaults, OpenColumnSourcesNoCurrent)
{
    FaultMap map(4, 3);
    map.setColOpen(1);
    const std::vector<float> w(4 * 3, 0.8f);
    CrossbarArray xbar = faultyCrossbar(4, 3, map, w);

    const auto eval = xbar.evaluateIdeal({1.0, 1.0, 1.0, 1.0}, 110e-9);
    EXPECT_GT(eval.currents[0], 0.0);
    EXPECT_EQ(eval.currents[1], 0.0);
    EXPECT_GT(eval.currents[2], 0.0);
}

TEST(CrossbarFaults, OpenRowContributesNothing)
{
    FaultMap map(4, 3);
    map.setRowOpen(0);
    const std::vector<float> w(4 * 3, 0.8f);
    CrossbarArray xbar = faultyCrossbar(4, 3, map, w);

    // Drive only the broken row: every column current must be zero.
    const auto eval = xbar.evaluateIdeal({1.0, 0.0, 0.0, 0.0}, 110e-9);
    for (double i : eval.currents)
        EXPECT_DOUBLE_EQ(i, 0.0);
}

TEST(WriteVerify, ConvergesWithinPulseBudget)
{
    CrossbarParams p;
    p.rows = 16;
    p.cols = 12;
    p.variationSigma = 0.08; // programming noise the loop must trim out
    CrossbarArray xbar(p);

    std::vector<float> w(static_cast<size_t>(p.rows) * p.cols);
    Rng rng(3);
    for (auto &v : w)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));

    ProgrammingConfig config;
    config.writeVerify.enabled = true;
    const ProgramReport report = xbar.program(w, config);

    EXPECT_EQ(report.cells, static_cast<long long>(w.size()));
    EXPECT_EQ(report.failedCells, 0);
    EXPECT_GE(report.pulsesPerCell(), 1.0);
    EXPECT_LE(report.pulsesPerCell(),
              static_cast<double>(config.writeVerify.maxPulses));
    EXPECT_GT(report.programEnergy, 0.0);

    // Every cell reads within the accept band of its quantized target.
    const int top = p.levels - 1;
    const double tol = config.writeVerify.toleranceLevels * 2.0 / top;
    for (int r = 0; r < p.rows; ++r) {
        for (int c = 0; c < p.cols; ++c) {
            const int level = static_cast<int>(std::lround(
                (std::clamp<double>(w[r * p.cols + c], -1, 1) + 1) / 2 *
                top));
            EXPECT_NEAR(xbar.weightAt(r, c), 2.0 * level / top - 1.0,
                        tol + 1e-9);
        }
    }
}

TEST(WriteVerify, OpenLoopNeedsOnePulsePerCell)
{
    CrossbarParams p;
    p.rows = 8;
    p.cols = 8;
    CrossbarArray xbar(p);
    const ProgramReport report =
        xbar.program(std::vector<float>(64, 0.5f), ProgrammingConfig{});
    EXPECT_EQ(report.cells, 64);
    EXPECT_EQ(report.pulses, 64);
    EXPECT_EQ(report.failedCells, 0);
}

TEST(WriteVerify, HardStuckCellsFailSoftOnesDepin)
{
    FaultMap map(6, 6);
    map.cell(0, 0).kind = FaultKind::StuckHigh;
    map.cell(0, 0).hard = true;
    map.cell(3, 3).kind = FaultKind::StuckLow; // soft

    CrossbarParams p;
    p.rows = 6;
    p.cols = 6;
    CrossbarArray xbar(p);
    xbar.injectFaults(map);

    ProgrammingConfig config;
    config.writeVerify.enabled = true;
    config.writeVerify.depinProbability = 1.0; // soft walls free on retry 1
    const ProgramReport report =
        xbar.program(std::vector<float>(36, -0.44f), config);

    EXPECT_EQ(report.failedCells, 1); // only the hard cell
    EXPECT_NEAR(xbar.weightAt(0, 0), 1.0, 1e-12);
    const int top = p.levels - 1;
    const int level =
        static_cast<int>(std::lround((-0.44 + 1.0) / 2.0 * top));
    const double tol = config.writeVerify.toleranceLevels * 2.0 / top;
    EXPECT_NEAR(xbar.weightAt(3, 3), 2.0 * level / top - 1.0, tol + 1e-9);
    // The hard cell burned its whole pulse budget.
    EXPECT_GE(report.pulses,
              35 + static_cast<long long>(config.writeVerify.maxPulses));
}

TEST(SpareRepair, RepairedArrayMatchesFaultFreeBitExactly)
{
    const int rows = 8, cols = 4, spares = 2;
    std::vector<float> w(static_cast<size_t>(rows) * cols);
    Rng rng(11);
    for (auto &v : w)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));

    CrossbarParams clean_p;
    clean_p.rows = rows;
    clean_p.cols = cols;
    CrossbarArray clean(clean_p);
    clean.program(w, ProgrammingConfig{});

    // Faults confined to two logical columns; the spares are healthy.
    FaultMap map(rows, cols + spares);
    map.cell(2, 1).kind = FaultKind::StuckHigh;
    map.cell(2, 1).hard = true;
    map.setColOpen(3);

    ProgrammingConfig config;
    config.repair.enabled = true;
    CrossbarArray repaired =
        faultyCrossbar(rows, cols, map, w, spares, config);

    const ProgramReport report = repaired.program(w, config);
    EXPECT_EQ(report.repairedColumns, 2);
    EXPECT_EQ(report.irreparableColumns, 0);
    EXPECT_EQ(repaired.sparesUsed(), 2);
    EXPECT_GE(repaired.physicalColumn(1), cols);
    EXPECT_GE(repaired.physicalColumn(3), cols);
    EXPECT_EQ(repaired.physicalColumn(0), 0);

    std::vector<double> inputs(rows);
    for (int r = 0; r < rows; ++r)
        inputs[r] = (r % 3) / 2.0;
    const auto a = clean.evaluateIdeal(inputs, 110e-9);
    const auto b = repaired.evaluateIdeal(inputs, 110e-9);
    ASSERT_EQ(a.currents.size(), b.currents.size());
    for (size_t j = 0; j < a.currents.size(); ++j)
        EXPECT_DOUBLE_EQ(a.currents[j], b.currents[j]);
}

TEST(SpareRepair, WorstColumnsWinScarceSpares)
{
    const int rows = 8, cols = 4;
    FaultMap map(rows, cols + 1); // one spare only
    map.setColOpen(0);            // 8 defects
    map.cell(1, 2).kind = FaultKind::StuckLow;
    map.cell(1, 2).hard = true; // 1 defect

    ProgrammingConfig config;
    config.repair.enabled = true;
    CrossbarArray xbar = faultyCrossbar(
        rows, cols, map, std::vector<float>(rows * cols, 0.3f), 1, config);

    const ProgramReport report = xbar.program(
        std::vector<float>(static_cast<size_t>(rows) * cols, 0.3f), config);
    EXPECT_EQ(report.repairedColumns, 1);
    EXPECT_EQ(report.irreparableColumns, 1);
    EXPECT_GE(xbar.physicalColumn(0), cols); // the open column won
    EXPECT_EQ(xbar.physicalColumn(2), 2);
}

TEST(SpareRepair, DisabledLeavesIdentityMapping)
{
    FaultMap map(4, 6);
    map.setColOpen(0);
    CrossbarArray xbar = faultyCrossbar(
        4, 4, map, std::vector<float>(16, 0.1f), 2, ProgrammingConfig{});
    for (int j = 0; j < 4; ++j)
        EXPECT_EQ(xbar.physicalColumn(j), j);
    EXPECT_EQ(xbar.sparesUsed(), 0);
}

TEST(Variability, WrapperMatchesGaussianFaultModel)
{
    VariabilityModel legacy(0.1, 42);
    const GaussianVariabilityModel model(0.1);
    Rng rng(42);
    for (int i = 0; i < 200; ++i)
        EXPECT_DOUBLE_EQ(legacy.sampleFactor(), model.programFactor(rng));
}

TEST(Variability, ZeroSigmaIsIdentity)
{
    VariabilityModel legacy(0.0, 1);
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(legacy.sampleFactor(), 1.0);
    const GaussianVariabilityModel model(0.0);
    Rng rng(1);
    EXPECT_DOUBLE_EQ(model.programFactor(rng), 1.0);
}

/** Tiny quantized CNN shared by the chip / campaign tests. */
struct QuantizedFixture
{
    SyntheticDigits train{120, 8, 1};
    SyntheticDigits test{40, 8, 2};
    Network net{"rel-cnn"};
    QuantizationResult quant;

    QuantizedFixture()
    {
        Rng rng(7);
        net.add<Conv2d>(1, 4, 3, 1, 1)->initKaiming(rng);
        net.add<Relu>();
        net.add<AvgPool2d>(2);
        net.add<Flatten>();
        net.add<Linear>(4 * 4 * 4, 10)->initKaiming(rng);
        quant = quantizeNetwork(net, train.firstImages(16));
    }
};

TEST(ChipReliability, ProgramReportAndDeterminism)
{
    QuantizedFixture fix;

    ReliabilityConfig rel;
    rel.faults = std::make_shared<const StuckAtFaultModel>(0.02);
    rel.faultSeed = 31;
    rel.spareCols = 2;
    rel.writeVerify.enabled = true;
    rel.repair.enabled = true;

    NebulaChip a, b;
    a.setReliability(rel);
    b.setReliability(rel);
    a.programAnn(fix.net, fix.quant);
    b.programAnn(fix.net, fix.quant);

    EXPECT_GT(a.programReport().cells, 0);
    EXPECT_GT(a.programReport().pulses, a.programReport().cells);
    EXPECT_GT(a.programReport().programEnergy, 0.0);

    // Identical scenario -> identical chips, bit for bit.
    const Tensor image = fix.test.image(0);
    const Tensor la = a.runAnn(image), lb = b.runAnn(image);
    ASSERT_EQ(la.size(), lb.size());
    for (long long i = 0; i < la.size(); ++i)
        EXPECT_EQ(la[i], lb[i]);

    // Reprogramming resamples the same maps (stable report).
    const ProgramReport first = a.programReport();
    a.programAnn(fix.net, fix.quant);
    EXPECT_EQ(a.programReport().pulses, first.pulses);
    EXPECT_EQ(a.programReport().failedCells, first.failedCells);
    EXPECT_EQ(a.programReport().repairedColumns, first.repairedColumns);
}

TEST(ChipReliability, InactiveConfigKeepsLegacyPath)
{
    QuantizedFixture fix;
    NebulaChip plain, configured;
    configured.setReliability(ReliabilityConfig{}); // inactive
    plain.programAnn(fix.net, fix.quant);
    configured.programAnn(fix.net, fix.quant);

    const Tensor image = fix.test.image(1);
    const Tensor la = plain.runAnn(image), lb = configured.runAnn(image);
    for (long long i = 0; i < la.size(); ++i)
        EXPECT_EQ(la[i], lb[i]);
    // Both took the single-pulse open-loop path.
    EXPECT_EQ(plain.programReport().pulses, plain.programReport().cells);
    EXPECT_EQ(plain.programReport().pulses,
              configured.programReport().pulses);
}

TEST(Campaign, ChipSmokeIsDeterministic)
{
    QuantizedFixture fix;

    CampaignConfig config;
    config.rates = {0.0, 0.05};
    config.seeds = {21};
    config.mitigations = {MitigationSpec::none(),
                          MitigationSpec::full(2)};
    config.images = 8;
    config.runSnn = false;
    config.numWorkers = 2;

    const CampaignResult first =
        runChipCampaign(fix.net, fix.quant, nullptr, fix.test, config);
    ASSERT_EQ(first.rows.size(), 4u); // 2 mitigations x 2 rates x 1 seed
    for (const CampaignRow &row : first.rows) {
        EXPECT_EQ(row.backend, "chip");
        EXPECT_EQ(row.mode, "ann");
        EXPECT_EQ(row.images, 8);
        EXPECT_GE(row.accuracy, 0.0);
        EXPECT_LE(row.accuracy, 1.0);
        EXPECT_GT(row.report.cells, 0); // report captured from replicas
    }

    const CampaignResult second =
        runChipCampaign(fix.net, fix.quant, nullptr, fix.test, config);
    EXPECT_EQ(first.csv(), second.csv());

    // Fault-free rows agree across mitigation configs.
    EXPECT_DOUBLE_EQ(first.meanAccuracy("ann", "none", 0.0),
                     first.meanAccuracy("ann", "wv+repair", 0.0));
}

TEST(Campaign, CsvHasHeaderAndAllRows)
{
    CampaignResult result;
    CampaignRow row;
    row.backend = "chip";
    row.mode = "ann";
    row.mitigation = "none";
    row.rate = 0.01;
    row.seed = 3;
    row.images = 10;
    row.correct = 7;
    row.accuracy = 0.7;
    result.rows.push_back(row);

    const std::string csv = result.csv();
    EXPECT_NE(csv.find("backend,mode,mitigation,rate,seed"),
              std::string::npos);
    EXPECT_NE(csv.find("chip,ann,none,0.010000,3,10,7,0.700000"),
              std::string::npos);
    EXPECT_DOUBLE_EQ(result.meanAccuracy("ann", "none", 0.01), 0.7);
    EXPECT_DOUBLE_EQ(result.meanAccuracy("snn", "none", 0.01), -1.0);
}

TEST(Campaign, ApplyFaultsToWeightsMirrorsCrossbarLayout)
{
    QuantizedFixture fix;

    Network a = fix.net.clone();
    Network b = fix.net.clone();
    const StuckAtFaultModel model(0.1, 1.0, 1.0); // all stuck high
    applyFaultsToWeights(a, model, 5);
    applyFaultsToWeights(b, model, 5);

    int changed = 0;
    bool all_at_wmax = true;
    for (int i = 0; i < a.numLayers(); ++i) {
        if (!a.layer(i).isWeightLayer())
            continue;
        const Tensor &wa = *a.layer(i).parameters()[0];
        const Tensor &wb = *b.layer(i).parameters()[0];
        const Tensor &orig = *fix.net.layer(i).parameters()[0];
        const float wmax = orig.maxAbs();
        for (long long j = 0; j < wa.size(); ++j) {
            EXPECT_EQ(wa[j], wb[j]); // deterministic
            if (wa[j] != orig[j]) {
                ++changed;
                all_at_wmax &= std::abs(wa[j] - wmax) < 1e-6f;
            }
        }
    }
    EXPECT_GT(changed, 0);
    EXPECT_TRUE(all_at_wmax); // stuck-high pins at +|w|max
}

} // namespace
} // namespace nebula
