/**
 * @file
 * Tests for the resilience layer: seeded-backoff properties (bit-exact
 * reproducibility, monotone saturation, zero allocations per step),
 * typed terminal outcomes for shed / timeout / cancelled / faulted
 * requests, deadline-aware admission control, supervisor restarts under
 * a chaos load that poisons replicas mid-run, and the closed-loop
 * health monitor recovering bit-exact accuracy from a retention-decay
 * ramp (with a monitor-off control that stays degraded) plus its full
 * escalation ladder: failed repair -> in-situ fine-tune -> demote. The
 * suite runs under ThreadSanitizer in CI next to runtime_test.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "arch/chip.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/health.hpp"
#include "runtime/backoff.hpp"
#include "runtime/engine.hpp"
#include "runtime/replica.hpp"

// ---------------------------------------------------------------------------
// Counting global allocator: lets the backoff test assert that
// nextDelayNs() performs zero heap allocations per step. Only the
// plain (unaligned) forms are replaced; their aligned counterparts
// keep the default implementation, so new/delete pairing stays intact.
// ---------------------------------------------------------------------------

// GCC pairs call sites of the replaced operator new (which it inlines
// down to malloc) with the default-looking sized delete and reports a
// mismatch; the pairing is in fact exact (new -> malloc, delete -> free).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

static std::atomic<long long> g_allocations{0};

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace nebula {
namespace {

constexpr int kImageSize = 12;
constexpr int kClasses = 10;

struct Prototypes
{
    SyntheticDigits data{48, kImageSize, /*seed=*/9};
    Network quantNet;
    QuantizationResult quant;

    Prototypes()
        : quantNet(buildMlp3(kImageSize, 1, kClasses, /*seed=*/3)),
          quant(quantizeNetwork(quantNet, data.firstImages(16)))
    {
    }
};

Prototypes &
protos()
{
    static Prototypes p;
    return p;
}

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    if (a.size() != b.size())
        return false;
    for (long long i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

// ---------------------------------------------------------------------------
// Test replicas wrapping a real chip replica.
// ---------------------------------------------------------------------------

/** Parks in run() until released; lets tests pin the worker pool. */
class GatedReplica : public ChipReplica
{
  public:
    GatedReplica(std::unique_ptr<ChipReplica> base,
                 std::atomic<int> *entered, std::atomic<bool> *release)
        : base_(std::move(base)), entered_(entered), release_(release)
    {
    }

    InferenceResult
    run(const InferenceRequest &request) override
    {
        entered_->fetch_add(1);
        while (!release_->load())
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        return base_->run(request);
    }

    const char *mode() const override { return base_->mode(); }

  private:
    std::unique_ptr<ChipReplica> base_;
    std::atomic<int> *entered_;
    std::atomic<bool> *release_;
};

/** Sleeps a fixed time per request (gives the EWMA a known scale). */
class SleepyReplica : public ChipReplica
{
  public:
    SleepyReplica(std::unique_ptr<ChipReplica> base,
                  std::chrono::microseconds nap)
        : base_(std::move(base)), nap_(nap)
    {
    }

    InferenceResult
    run(const InferenceRequest &request) override
    {
        std::this_thread::sleep_for(nap_);
        return base_->run(request);
    }

    const char *mode() const override { return base_->mode(); }

  private:
    std::unique_ptr<ChipReplica> base_;
    std::chrono::microseconds nap_;
};

/** Serves @p healthy requests, then throws on every later one. */
class PoisonedReplica : public ChipReplica
{
  public:
    PoisonedReplica(std::unique_ptr<ChipReplica> base, int healthy)
        : base_(std::move(base)), remaining_(healthy)
    {
    }

    InferenceResult
    run(const InferenceRequest &request) override
    {
        if (remaining_ <= 0)
            throw std::runtime_error("replica poisoned");
        --remaining_;
        return base_->run(request);
    }

    const char *mode() const override { return base_->mode(); }

  private:
    std::unique_ptr<ChipReplica> base_;
    int remaining_; //!< worker-thread-local
};

/** Throws on the first @p failures requests, then recovers. */
class FlakyStartReplica : public ChipReplica
{
  public:
    FlakyStartReplica(std::unique_ptr<ChipReplica> base, int failures)
        : base_(std::move(base)), failures_(failures)
    {
    }

    InferenceResult
    run(const InferenceRequest &request) override
    {
        if (failures_ > 0) {
            --failures_;
            throw std::runtime_error("transient replica fault");
        }
        return base_->run(request);
    }

    const char *mode() const override { return base_->mode(); }

  private:
    std::unique_ptr<ChipReplica> base_;
    int failures_;
};

// ---------------------------------------------------------------------------
// Backoff properties
// ---------------------------------------------------------------------------

TEST(Backoff, SeededJitterIsReproducible)
{
    BackoffConfig cfg;
    cfg.initialNs = 500'000;
    cfg.capNs = 50'000'000;
    cfg.multiplier = 2.0;
    cfg.jitter = 0.25;

    ExponentialBackoff a(cfg, /*seed=*/42), b(cfg, /*seed=*/42);
    ExponentialBackoff c(cfg, /*seed=*/43);
    bool diverged = false;
    for (int i = 0; i < 32; ++i) {
        const uint64_t da = a.nextDelayNs();
        EXPECT_EQ(da, b.nextDelayNs()) << "same seed diverged at step " << i;
        if (da != c.nextDelayNs())
            diverged = true;
    }
    EXPECT_TRUE(diverged) << "distinct seeds produced identical jitter";
    EXPECT_EQ(a.attempt(), 32);
}

TEST(Backoff, MonotoneGrowthSaturatesAtCapWithoutJitter)
{
    BackoffConfig cfg;
    cfg.initialNs = 1'000'000;
    cfg.capNs = 16'000'000;
    cfg.multiplier = 2.0;
    cfg.jitter = 0.0;

    ExponentialBackoff backoff(cfg, /*seed=*/7);
    uint64_t previous = 0;
    for (int i = 0; i < 20; ++i) {
        const uint64_t delay = backoff.nextDelayNs();
        EXPECT_GE(delay, previous) << "delay shrank at step " << i;
        EXPECT_LE(delay, cfg.capNs);
        previous = delay;
    }
    EXPECT_EQ(previous, cfg.capNs); // saturated
    // The exact doubling prefix: 1, 2, 4, 8, 16, 16, ... ms.
    backoff.reset();
    EXPECT_EQ(backoff.nextDelayNs(), 1'000'000u);
    EXPECT_EQ(backoff.nextDelayNs(), 2'000'000u);
    EXPECT_EQ(backoff.nextDelayNs(), 4'000'000u);
    EXPECT_EQ(backoff.attempt(), 3);
}

TEST(Backoff, JitteredDelaysStayWithinBounds)
{
    BackoffConfig cfg;
    cfg.initialNs = 2'000'000;
    cfg.capNs = 64'000'000;
    cfg.multiplier = 2.0;
    cfg.jitter = 0.2;

    ExponentialBackoff backoff(cfg, /*seed=*/11);
    double base = static_cast<double>(cfg.initialNs);
    for (int i = 0; i < 24; ++i) {
        const double delay = static_cast<double>(backoff.nextDelayNs());
        EXPECT_GE(delay, base * (1.0 - cfg.jitter) - 1.0);
        EXPECT_LE(delay, base * (1.0 + cfg.jitter) + 1.0);
        base = std::min(static_cast<double>(cfg.capNs),
                        base * cfg.multiplier);
    }
}

TEST(Backoff, ZeroAllocationsPerStep)
{
    ExponentialBackoff backoff({}, /*seed=*/5);
    (void)backoff.nextDelayNs(); // warm up outside the window
    const long long before = g_allocations.load();
    uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i)
        sink += backoff.nextDelayNs();
    const long long after = g_allocations.load();
    EXPECT_GT(sink, 0u);
    EXPECT_EQ(after, before) << "nextDelayNs() touched the allocator";
}

// ---------------------------------------------------------------------------
// Typed terminal outcomes: shed, timeout, cancel, queue-full trySubmit
// ---------------------------------------------------------------------------

TEST(Resilience, RejectWhenFullShedsWithTypedOutcome)
{
    Prototypes &p = protos();
    std::atomic<int> entered{0};
    std::atomic<bool> release{false};

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.queueCapacity = 1;
    cfg.shedPolicy = ShedPolicy::RejectWhenFull;
    auto base = makeAnnReplicaFactory(p.quantNet, p.quant);
    InferenceEngine engine(cfg, [&](int id) {
        return std::make_unique<GatedReplica>(base(id), &entered, &release);
    });

    // Pin the single worker inside request A, then fill the queue with
    // B; C now has nowhere to go and must shed immediately.
    auto a = engine.submit(p.data.image(0));
    while (entered.load() == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    auto b = engine.submit(p.data.image(1));
    auto c = engine.submit(p.data.image(2));
    ASSERT_EQ(c.wait_for(std::chrono::seconds(0)),
              std::future_status::ready); // resolved at admission

    // The non-blocking probe is refused outright in the same state.
    std::future<InferenceResult> d;
    EXPECT_FALSE(engine.trySubmit(p.data.image(3), d));

    release.store(true);
    const InferenceResult shed = c.get();
    EXPECT_EQ(shed.error, RuntimeErrorKind::Shed);
    EXPECT_EQ(shed.errorMessage, "queue full");
    EXPECT_TRUE(a.get().ok());
    EXPECT_TRUE(b.get().ok());
    EXPECT_EQ(engine.shedCount(), 1u);

    engine.shutdown();
    // Shed requests are refusals: they never enter submitted/completed.
    EXPECT_EQ(engine.submitted(), 2u);
    EXPECT_EQ(engine.completed(), 2u);
}

TEST(Resilience, DeadlineExpiryInQueueResolvesToTimeout)
{
    Prototypes &p = protos();
    std::atomic<int> entered{0};
    std::atomic<bool> release{false};

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.queueCapacity = 4;
    auto base = makeAnnReplicaFactory(p.quantNet, p.quant);
    InferenceEngine engine(cfg, [&](int id) {
        return std::make_unique<GatedReplica>(base(id), &entered, &release);
    });

    auto a = engine.submit(p.data.image(0)); // no deadline, gated
    while (entered.load() == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(100));

    InferenceRequest tight;
    tight.image = p.data.image(1);
    tight.deadlineNs = 2'000'000; // 2 ms budget, spent behind the gate
    auto b = engine.submit(std::move(tight));

    InferenceRequest roomy;
    roomy.image = p.data.image(2);
    roomy.deadlineNs = 10'000'000'000ull; // 10 s: cannot expire
    auto c = engine.submit(std::move(roomy));

    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    release.store(true);

    EXPECT_TRUE(a.get().ok());
    const InferenceResult timed_out = b.get();
    EXPECT_EQ(timed_out.error, RuntimeErrorKind::Timeout);
    EXPECT_GT(timed_out.queueSeconds, 0.0);
    EXPECT_EQ(timed_out.logits.size(), 0);
    EXPECT_TRUE(c.get().ok());

    StatGroup stats = engine.runtimeStats();
    EXPECT_EQ(stats.scalarAt("timeouts").sum(), 1.0);
    engine.shutdown();
    EXPECT_EQ(engine.completed(), 3u); // timeout counts as completed
}

TEST(Resilience, DeadlineAwareAdmissionShedsPredictedMisses)
{
    Prototypes &p = protos();

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.queueCapacity = 8;
    cfg.shedPolicy = ShedPolicy::DeadlineAware;
    auto base = makeAnnReplicaFactory(p.quantNet, p.quant);
    InferenceEngine engine(cfg, [&](int id) {
        return std::make_unique<SleepyReplica>(
            base(id), std::chrono::microseconds(2000));
    });

    // Teach the EWMA that requests cost ~2 ms.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(engine.submit(p.data.image(i)).get().ok());
    engine.waitIdle();
    EXPECT_GT(engine.serviceEstimateSeconds(), 0.0);

    // A 1 us budget cannot survive a ~2 ms predicted wait: shed at
    // submit, before the request ever occupies queue space.
    InferenceRequest doomed;
    doomed.image = p.data.image(5);
    doomed.deadlineNs = 1'000;
    const InferenceResult shed = engine.submit(std::move(doomed)).get();
    EXPECT_EQ(shed.error, RuntimeErrorKind::Shed);
    EXPECT_GE(engine.shedCount(), 1u);

    // Deadline-free requests pass through untouched under this policy.
    EXPECT_TRUE(engine.submit(p.data.image(6)).get().ok());
    engine.shutdown();
}

TEST(Resilience, CancelFlagResolvesToCancelledWithoutEvaluation)
{
    Prototypes &p = protos();
    std::atomic<int> entered{0};
    std::atomic<bool> release{false};

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.queueCapacity = 4;
    auto base = makeAnnReplicaFactory(p.quantNet, p.quant);
    InferenceEngine engine(cfg, [&](int id) {
        return std::make_unique<GatedReplica>(base(id), &entered, &release);
    });

    auto a = engine.submit(p.data.image(0)); // gated
    while (entered.load() == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(100));

    InferenceRequest cancellable;
    cancellable.image = p.data.image(1);
    cancellable.cancel = std::make_shared<std::atomic<bool>>(false);
    CancelFlag flag = cancellable.cancel;
    auto b = engine.submit(std::move(cancellable));
    flag->store(true); // while still queued behind the gate
    release.store(true);

    EXPECT_TRUE(a.get().ok());
    const InferenceResult cancelled = b.get();
    EXPECT_EQ(cancelled.error, RuntimeErrorKind::Cancelled);
    EXPECT_EQ(cancelled.logits.size(), 0);

    // A pre-cancelled request never reaches the replica either (the
    // gate would park the worker forever if it did).
    InferenceRequest dead;
    dead.image = p.data.image(2);
    dead.cancel = std::make_shared<std::atomic<bool>>(true);
    EXPECT_EQ(engine.submit(std::move(dead)).get().error,
              RuntimeErrorKind::Cancelled);
    engine.shutdown();
}

// ---------------------------------------------------------------------------
// Retry and supervision
// ---------------------------------------------------------------------------

TEST(Resilience, SubmitWithRetryRecoversFromTransientFaults)
{
    Prototypes &p = protos();

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.maxConsecutiveFaults = 0; // retries, not the supervisor, recover
    auto base = makeAnnReplicaFactory(p.quantNet, p.quant);
    InferenceEngine engine(cfg, [&](int id) {
        return std::make_unique<FlakyStartReplica>(base(id), /*failures=*/2);
    });

    BackoffConfig fast;
    fast.initialNs = 1000; // keep the test quick
    fast.capNs = 10'000;
    const InferenceResult result =
        submitWithRetry(engine, p.data.image(0), /*max_attempts=*/4, fast);
    EXPECT_TRUE(result.ok()) << result.errorMessage;
    EXPECT_EQ(result.logits.size(), kClasses);

    StatGroup stats = engine.runtimeStats();
    EXPECT_EQ(stats.scalarAt("failures").sum(), 2.0);
    engine.shutdown();
}

TEST(Resilience, RetryBudgetExhaustionReturnsTheFault)
{
    Prototypes &p = protos();

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.maxConsecutiveFaults = 0;
    auto base = makeAnnReplicaFactory(p.quantNet, p.quant);
    InferenceEngine engine(cfg, [&](int id) {
        return std::make_unique<FlakyStartReplica>(base(id),
                                                   /*failures=*/1000000);
    });

    BackoffConfig fast;
    fast.initialNs = 1000;
    fast.capNs = 10'000;
    const InferenceResult result =
        submitWithRetry(engine, p.data.image(0), /*max_attempts=*/3, fast);
    EXPECT_EQ(result.error, RuntimeErrorKind::ReplicaFault);
    EXPECT_FALSE(result.errorMessage.empty());
    engine.shutdown();
}

TEST(Resilience, ChaosLoadResolvesEveryFutureToTypedOutcome)
{
    Prototypes &p = protos();
    const int producers = 4, per_producer = 40;
    const int total = producers * per_producer;

    EngineConfig cfg;
    cfg.numWorkers = 3;
    cfg.queueCapacity = 8;
    cfg.maxConsecutiveFaults = 2; // supervisor restarts poisoned replicas
    auto base = makeAnnReplicaFactory(p.quantNet, p.quant);
    InferenceEngine engine(cfg, [&](int id) {
        return std::make_unique<PoisonedReplica>(base(id), /*healthy=*/5);
    });

    std::vector<std::vector<std::future<InferenceResult>>> futures(
        static_cast<size_t>(producers));
    std::vector<std::thread> threads;
    for (int t = 0; t < producers; ++t) {
        threads.emplace_back([&, t] {
            auto &mine = futures[static_cast<size_t>(t)];
            mine.reserve(static_cast<size_t>(per_producer));
            for (int j = 0; j < per_producer; ++j) {
                InferenceRequest request;
                request.image = p.data.image((t * per_producer + j) %
                                             p.data.size());
                if (j % 11 == 3) // a few requests that must time out
                    request.deadlineNs = 1;
                if (j % 13 == 7) // and a few born cancelled
                    request.cancel =
                        std::make_shared<std::atomic<bool>>(true);
                mine.push_back(engine.submit(std::move(request)));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    engine.shutdown();

    int ok = 0, faults = 0, timeouts = 0, cancelled = 0, other = 0;
    for (auto &lane : futures) {
        for (auto &future : lane) {
            const InferenceResult result = future.get(); // never hangs
            switch (result.error) {
            case RuntimeErrorKind::None:
                EXPECT_EQ(result.logits.size(), kClasses);
                ++ok;
                break;
            case RuntimeErrorKind::ReplicaFault: ++faults; break;
            case RuntimeErrorKind::Timeout: ++timeouts; break;
            case RuntimeErrorKind::Cancelled: ++cancelled; break;
            default: ++other; break;
            }
        }
    }
    EXPECT_EQ(ok + faults + timeouts + cancelled + other, total);
    EXPECT_EQ(other, 0) << "unexpected outcome kind under chaos";
    EXPECT_GT(ok, 0);
    EXPECT_GT(faults, 0) << "poisoned replicas should have faulted";
    EXPECT_GT(cancelled, 0);
    EXPECT_EQ(engine.completed(), static_cast<uint64_t>(total));
    EXPECT_GE(engine.workerRestarts(), 1u);
    // Quarantine retains the newest replicas up to its capacity.
    EXPECT_EQ(engine.quarantinedCount(),
              std::min(static_cast<size_t>(engine.workerRestarts()),
                       engine.config().quarantineCapacity));
}

TEST(Resilience, QuarantineRetentionIsCapped)
{
    Prototypes &p = protos();

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.maxConsecutiveFaults = 1; // restart after every fault
    cfg.quarantineCapacity = 2;
    auto base = makeAnnReplicaFactory(p.quantNet, p.quant);
    InferenceEngine engine(cfg, [&](int id) {
        return std::make_unique<PoisonedReplica>(base(id), /*healthy=*/0);
    });

    // Every request faults and every fault restarts the worker, the
    // pathological case where an unbounded quarantine would retain one
    // poisoned replica per request forever.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(engine.submit(p.data.image(i)).get().error,
                  RuntimeErrorKind::ReplicaFault);
    engine.waitIdle();
    EXPECT_EQ(engine.workerRestarts(), 5u);
    EXPECT_EQ(engine.quarantinedCount(), 2u);
    engine.shutdown();
}

// ---------------------------------------------------------------------------
// Closed-loop health management
// ---------------------------------------------------------------------------

/** Retention-decay ramp: conductances relaxed well past tolerance. */
ReliabilityConfig
decayRamp()
{
    ReliabilityConfig rel;
    rel.faults = std::make_shared<RetentionDecayFaultModel>(
        /*elapsed=*/5.0, /*tau=*/1.0, /*sigma=*/0.3);
    return rel;
}

TEST(Health, ClosedLoopRecoversBitExactFromRetentionDecay)
{
    Prototypes &p = protos();
    const int probe_every = 4;

    // Clean sequential reference.
    NebulaChip reference;
    reference.programAnn(p.quantNet, p.quant);
    std::vector<Tensor> expected;
    for (int i = 0; i < 16; ++i)
        expected.push_back(reference.runAnn(p.data.image(i)));

    HealthConfig hc;
    hc.probeEvery = probe_every;
    hc.tolerance = 1e-6;
    hc.maxRepairAttempts = 1;
    hc.repairWith = ReliabilityConfig{}; // re-programming resets decay
    std::vector<Tensor> canaries{p.data.image(40), p.data.image(41)};
    auto health = std::make_shared<HealthMonitor>(hc, canaries);

    EngineConfig cfg;
    cfg.numWorkers = 1; // serial worker: deterministic request order
    cfg.health = health;
    InferenceEngine engine(cfg, makeAnnReplicaFactory(p.quantNet, p.quant));

    // Pristine phase: bit-exact, and the first probe passes.
    for (int i = 0; i < probe_every; ++i)
        EXPECT_TRUE(bitIdentical(engine.submit(p.data.image(i)).get().logits,
                                 expected[static_cast<size_t>(i)]));
    engine.waitIdle();
    EXPECT_EQ(health->probes(), 1);
    EXPECT_EQ(health->degradations(), 0);
    EXPECT_EQ(health->health(0), ReplicaHealth::Healthy);

    // Age the crossbars in place: a decay ramp silently corrupts the
    // programmed conductances (no fault is *reported* anywhere).
    engine.withReplicas(
        [&](ChipReplica &replica) { EXPECT_TRUE(replica.reprogram(decayRamp())); });

    // The decayed replica now serves wrong logits...
    bool deviated = false;
    for (int i = 0; i < probe_every; ++i) {
        const InferenceResult result = engine.submit(p.data.image(i)).get();
        EXPECT_TRUE(result.ok());
        if (!bitIdentical(result.logits, expected[static_cast<size_t>(i)]))
            deviated = true;
    }
    EXPECT_TRUE(deviated) << "decay ramp failed to perturb the logits";
    engine.waitIdle();

    // ...until the canary probe caught it and re-programmed in place.
    EXPECT_EQ(health->degradations(), 1);
    EXPECT_EQ(health->repairs(), 1);
    EXPECT_EQ(health->demotions(), 0);
    EXPECT_EQ(health->health(0), ReplicaHealth::Repaired);
    EXPECT_LE(health->lastDeviation(0), hc.tolerance);

    // Recovered phase: bit-exact against the clean reference again.
    for (int i = 0; i < 8; ++i) {
        const InferenceResult result = engine.submit(p.data.image(i)).get();
        EXPECT_TRUE(result.ok());
        EXPECT_TRUE(bitIdentical(result.logits,
                                 expected[static_cast<size_t>(i)]))
            << "post-repair logits diverged on image " << i;
    }
    engine.shutdown();
}

TEST(Health, MonitorOffControlStaysDegraded)
{
    Prototypes &p = protos();

    NebulaChip reference;
    reference.programAnn(p.quantNet, p.quant);
    std::vector<Tensor> expected;
    for (int i = 0; i < 8; ++i)
        expected.push_back(reference.runAnn(p.data.image(i)));

    EngineConfig cfg;
    cfg.numWorkers = 1; // same shape as the monitored run, health off
    InferenceEngine engine(cfg, makeAnnReplicaFactory(p.quantNet, p.quant));

    engine.withReplicas(
        [&](ChipReplica &replica) { EXPECT_TRUE(replica.reprogram(decayRamp())); });

    // Serve well past the monitored engine's probe cadence: with nobody
    // probing, the degradation never heals.
    int deviant = 0;
    for (int round = 0; round < 3; ++round)
        for (int i = 0; i < 8; ++i) {
            const InferenceResult result =
                engine.submit(p.data.image(i)).get();
            EXPECT_TRUE(result.ok());
            if (!bitIdentical(result.logits,
                              expected[static_cast<size_t>(i)]))
                ++deviant;
        }
    EXPECT_GT(deviant, 0) << "control run unexpectedly self-healed";
    engine.shutdown();
}

TEST(Health, FailedRepairDemotesToFunctionalBackend)
{
    Prototypes &p = protos();
    const int probe_every = 2;

    HealthConfig hc;
    hc.probeEvery = probe_every;
    hc.tolerance = 1e-6;
    hc.maxRepairAttempts = 1;
    hc.repairWith = decayRamp(); // "repair" that cannot clear the decay
    std::vector<Tensor> canaries{p.data.image(40), p.data.image(41)};
    auto health = std::make_shared<HealthMonitor>(hc, canaries);
    health->setFallback(makeFunctionalAnnReplicaFactory(p.quantNet));

    EngineConfig cfg;
    cfg.numWorkers = 0; // inline mode: the probe ladder runs unthreaded
    cfg.health = health;
    InferenceEngine engine(cfg, makeAnnReplicaFactory(p.quantNet, p.quant));

    engine.withReplicas(
        [&](ChipReplica &replica) { EXPECT_TRUE(replica.reprogram(decayRamp())); });

    // Serve to the probe point: probe fails, the in-place repair also
    // fails (it re-applies the ramp), and the slot demotes.
    for (int i = 0; i < probe_every; ++i)
        EXPECT_TRUE(engine.submit(p.data.image(i)).get().ok());
    EXPECT_EQ(health->degradations(), 1);
    EXPECT_EQ(health->repairs(), 0);
    EXPECT_EQ(health->demotions(), 1);
    EXPECT_EQ(health->health(0), ReplicaHealth::Demoted);

    // The functional fallback keeps answering, and demoted slots are
    // never probed again (their logits are not canary-comparable).
    for (int i = 0; i < 4 * probe_every; ++i) {
        const InferenceResult result = engine.submit(p.data.image(i)).get();
        EXPECT_TRUE(result.ok());
        EXPECT_GE(result.predictedClass, 0);
        EXPECT_LT(result.predictedClass, kClasses);
    }
    EXPECT_EQ(health->demotions(), 1);
    EXPECT_EQ(health->health(0), ReplicaHealth::Demoted);
    engine.shutdown();
}

// Repair that cannot clear the damage, but a fine-tune escalation that
// can learn around it: the ladder must stop at Tuned, never reaching
// the armed demotion fallback. Uses a *trained* network (the shared
// untrained prototypes have no accuracy for the tuner to recover) and
// a retention ramp as both the damage and the futile "repair" flow.
TEST(Health, FailedRepairEscalatesToFineTuneBeforeDemotion)
{
    SyntheticDigits train(500, kImageSize, /*seed=*/61);
    Network net = buildMlp3(kImageSize, 1, kClasses, /*seed=*/71);
    TrainConfig tc;
    tc.epochs = 6;
    SgdTrainer(tc).train(net, train);
    const QuantizationResult quant =
        quantizeNetwork(net, train.firstImages(64));

    ReliabilityConfig decay;
    decay.faults = std::make_shared<RetentionDecayFaultModel>(
        /*elapsed=*/0.8, /*tau=*/1.0, /*sigma=*/0.4);
    decay.faultSeed = 99;

    HealthConfig hc;
    hc.probeEvery = 2;
    hc.tolerance = 1e-6;
    hc.maxRepairAttempts = 1;
    hc.repairWith = decay; // "repair" that re-applies the ramp
    hc.fineTune.enabled = true;
    hc.fineTune.tuning.epochs = 2;
    hc.fineTune.passRatio = 0.5;
    for (int i = 0; i < 96; ++i) {
        hc.fineTune.images.push_back(train.image(i));
        hc.fineTune.labels.push_back(train.label(i));
    }
    // Canaries outside the calibration set: agreement measures learned
    // recovery, not memorization of the tuning images.
    std::vector<Tensor> canaries;
    for (int i = 100; i < 108; ++i)
        canaries.push_back(train.image(i));
    auto health = std::make_shared<HealthMonitor>(hc, canaries);
    health->setFallback(makeFunctionalAnnReplicaFactory(net));

    EngineConfig cfg;
    cfg.numWorkers = 0; // inline mode: the probe ladder runs unthreaded
    cfg.health = health;
    InferenceEngine engine(cfg, makeAnnReplicaFactory(net, quant));

    engine.withReplicas([&](ChipReplica &replica) {
        EXPECT_TRUE(replica.reprogram(decay));
    });

    // Serve to the probe point: probe fails, the repair pass re-applies
    // the ramp and fails too, and the fine-tune escalation recovers the
    // slot in place.
    for (int i = 0; i < hc.probeEvery; ++i)
        EXPECT_EQ(engine.submit(train.image(i)).get().error,
                  RuntimeErrorKind::None);
    EXPECT_EQ(health->degradations(), 1);
    EXPECT_EQ(health->repairs(), 0);
    EXPECT_EQ(health->fineTunes(), 1);
    EXPECT_EQ(health->demotions(), 0) << "escalation fell through to demote";
    EXPECT_EQ(health->health(0), ReplicaHealth::Tuned);

    // Tuned slots are exempt from further deviation probes (their
    // logits are permanently offset from the pristine canaries) and
    // every later future still resolves to a typed outcome.
    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 6 * hc.probeEvery; ++i)
        futures.push_back(engine.submit(train.image(i)));
    for (auto &future : futures) {
        const InferenceResult result = future.get();
        EXPECT_EQ(result.error, RuntimeErrorKind::None);
        EXPECT_GE(result.predictedClass, 0);
        EXPECT_LT(result.predictedClass, kClasses);
    }
    EXPECT_EQ(health->fineTunes(), 1);
    EXPECT_EQ(health->demotions(), 0);
    EXPECT_EQ(health->health(0), ReplicaHealth::Tuned);
    engine.shutdown();
}

// The canary probe runs on the worker thread after the request's
// promise is already satisfied. A replica that faults *during the
// probe* must not crash the worker (std::terminate via a second
// set_value on the settled promise) -- the probe failure is absorbed
// and later requests still resolve to typed outcomes.
TEST(Health, ThrowingProbeNeverTouchesTheSettledPromise)
{
    Prototypes &p = protos();

    HealthConfig hc;
    hc.probeEvery = 1; // probe after every request
    std::vector<Tensor> canaries{p.data.image(40)};

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.maxConsecutiveFaults = 0; // keep the poisoned replica in place
    cfg.health = std::make_shared<HealthMonitor>(hc, canaries);
    auto base = makeAnnReplicaFactory(p.quantNet, p.quant);
    InferenceEngine engine(cfg, [&](int id) {
        // Healthy budget 2: one run for the canary capture at engine
        // start, one for the first request. The probe that follows the
        // first request then throws inside the worker.
        return std::make_unique<PoisonedReplica>(base(id), /*healthy=*/2);
    });

    EXPECT_TRUE(engine.submit(p.data.image(0)).get().ok());
    // The worker survived the throwing probe: the next request reaches
    // the (now poisoned) replica and resolves to a typed fault instead
    // of hanging on a dead thread.
    EXPECT_EQ(engine.submit(p.data.image(1)).get().error,
              RuntimeErrorKind::ReplicaFault);

    StatGroup stats = engine.runtimeStats();
    EXPECT_EQ(stats.scalarAt("probe_failures").sum(), 1.0);
    engine.shutdown();
}

// Same hazard on the inline (numWorkers == 0) path: a throwing probe
// used to land in runInline's catch block, whose second set_value threw
// std::future_error at the submitter instead of returning the future.
TEST(Health, ThrowingProbeInlineStillReturnsTypedResults)
{
    Prototypes &p = protos();

    HealthConfig hc;
    hc.probeEvery = 1;
    std::vector<Tensor> canaries{p.data.image(40)};

    EngineConfig cfg;
    cfg.numWorkers = 0;
    cfg.health = std::make_shared<HealthMonitor>(hc, canaries);
    auto base = makeAnnReplicaFactory(p.quantNet, p.quant);
    InferenceEngine engine(cfg, [&](int id) {
        return std::make_unique<PoisonedReplica>(base(id), /*healthy=*/2);
    });

    EXPECT_TRUE(engine.submit(p.data.image(0)).get().ok());
    EXPECT_EQ(engine.submit(p.data.image(1)).get().error,
              RuntimeErrorKind::ReplicaFault);
    engine.shutdown();
}

} // namespace
} // namespace nebula
