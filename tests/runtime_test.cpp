/**
 * @file
 * Tests for the concurrent inference runtime: queue backpressure,
 * bit-exact determinism of the worker pool against sequential chip
 * runs (ANN, SNN, hybrid, inline mode), a multi-producer concurrency
 * stress run, shutdown-while-busy semantics and stats aggregation.
 * The suite is run under ThreadSanitizer in CI (NEBULA_SANITIZE=thread).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "arch/chip.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "runtime/engine.hpp"
#include "runtime/replica.hpp"
#include "runtime/request_queue.hpp"
#include "snn/convert.hpp"

namespace nebula {
namespace {

constexpr int kImageSize = 12;
constexpr int kClasses = 10;

/** Shared prototypes: untrained MLP (bit-exactness needs no accuracy). */
struct Prototypes
{
    SyntheticDigits data{48, kImageSize, /*seed=*/9}; // before the nets:
                                                      // init order matters
    Network floatNet;         //!< pre-quantization clone (SNN/hybrid src)
    Network quantNet;         //!< quantized, ready for programAnn
    QuantizationResult quant;
    SpikingModel snn;

    Prototypes()
        : floatNet(buildMlp3(kImageSize, 1, kClasses, /*seed=*/3)),
          quantNet(floatNet.clone()),
          quant(quantizeNetwork(quantNet, data.firstImages(16))),
          snn(convertToSnn(floatNet, data.firstImages(16)))
    {
    }
};

Prototypes &
protos()
{
    static Prototypes p;
    return p;
}

bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    if (a.size() != b.size())
        return false;
    for (long long i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

TEST(BoundedQueue, BackpressureAndTryPush)
{
    BoundedQueue<int> queue(2);
    int a = 1, b = 2, c = 3;
    EXPECT_TRUE(queue.tryPush(a));
    EXPECT_TRUE(queue.tryPush(b));
    EXPECT_FALSE(queue.tryPush(c)); // full: refused, item kept
    EXPECT_EQ(c, 3);
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.highWater(), 2u);

    // A blocking push parks until a consumer makes room.
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        int d = 4;
        queue.push(std::move(d));
        pushed.store(true);
    });
    EXPECT_EQ(queue.pop().value(), 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(queue.pop().value(), 2);
    EXPECT_EQ(queue.pop().value(), 4);
}

TEST(BoundedQueue, CloseDrainsThenEndsStream)
{
    BoundedQueue<int> queue(8);
    for (int i = 0; i < 3; ++i) {
        int v = i;
        queue.tryPush(v);
    }
    queue.close();
    int w = 7;
    EXPECT_FALSE(queue.tryPush(w)); // closed: refused
    EXPECT_EQ(queue.pop().value(), 0);
    EXPECT_EQ(queue.pop().value(), 1);
    EXPECT_EQ(queue.pop().value(), 2);
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(Runtime, AnnPoolBitIdenticalToSequentialChip)
{
    Prototypes &p = protos();
    const int n = 12;

    // Sequential reference on one chip.
    NebulaChip reference;
    reference.programAnn(p.quantNet, p.quant);
    std::vector<Tensor> expected;
    for (int i = 0; i < n; ++i)
        expected.push_back(reference.runAnn(p.data.image(i)));

    EngineConfig cfg;
    cfg.numWorkers = 4;
    cfg.queueCapacity = 4; // exercises backpressure in submitBatch
    InferenceEngine engine(cfg, makeAnnReplicaFactory(p.quantNet, p.quant));

    std::vector<Tensor> images;
    for (int i = 0; i < n; ++i)
        images.push_back(p.data.image(i));
    auto futures = engine.submitBatch(images);
    ASSERT_EQ(futures.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        const InferenceResult result = futures[static_cast<size_t>(i)].get();
        EXPECT_EQ(result.id, static_cast<uint64_t>(i));
        EXPECT_TRUE(bitIdentical(result.logits,
                                 expected[static_cast<size_t>(i)]))
            << "ANN logits diverged on image " << i;
        EXPECT_EQ(result.predictedClass,
                  expected[static_cast<size_t>(i)].argmaxRow(0));
        EXPECT_GE(result.workerId, 0);
        EXPECT_LT(result.workerId, 4);
    }
    engine.shutdown();
}

TEST(Runtime, SnnPoolBitIdenticalToSequentialChip)
{
    Prototypes &p = protos();
    const int n = 8, timesteps = 6;

    EngineConfig cfg;
    cfg.numWorkers = 4;
    cfg.defaultTimesteps = timesteps;
    InferenceEngine engine(cfg, makeSnnReplicaFactory(p.snn));

    // Sequential reference replays the exact per-request seeds the
    // engine derives from the request ids.
    SpikingModel ref_model = p.snn.clone();
    NebulaChip reference;
    reference.programSnn(ref_model);

    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < n; ++i)
        futures.push_back(engine.submit(p.data.image(i)));
    for (int i = 0; i < n; ++i) {
        const InferenceResult result = futures[static_cast<size_t>(i)].get();
        const SnnRunResult expected = reference.runSnn(
            p.data.image(i), timesteps,
            engine.seedFor(static_cast<uint64_t>(i)));
        EXPECT_TRUE(bitIdentical(result.logits, expected.logits))
            << "SNN logits diverged on image " << i;
        EXPECT_EQ(result.spikes, expected.totalSpikes);
        EXPECT_EQ(result.timesteps, timesteps);
    }
    engine.shutdown();
}

TEST(Runtime, InlineModeMatchesWorkerPool)
{
    Prototypes &p = protos();
    const int n = 6;

    EngineConfig inline_cfg;
    inline_cfg.numWorkers = 0; // deterministic inline fallback
    InferenceEngine inline_engine(
        inline_cfg, makeAnnReplicaFactory(p.quantNet, p.quant));

    EngineConfig pool_cfg;
    pool_cfg.numWorkers = 2;
    InferenceEngine pool_engine(pool_cfg,
                                makeAnnReplicaFactory(p.quantNet, p.quant));

    for (int i = 0; i < n; ++i) {
        auto inline_future = inline_engine.submit(p.data.image(i));
        auto pool_future = pool_engine.submit(p.data.image(i));
        const InferenceResult a = inline_future.get();
        const InferenceResult b = pool_future.get();
        EXPECT_TRUE(bitIdentical(a.logits, b.logits));
        EXPECT_EQ(a.workerId, -1);
    }
    // Inline mode serves from the calling thread: nothing ever queued.
    EXPECT_EQ(inline_engine.queueDepth(), 0u);
    EXPECT_EQ(inline_engine.completed(), static_cast<uint64_t>(n));
}

TEST(Runtime, HybridPoolBitIdenticalToDirectRun)
{
    Prototypes &p = protos();
    const int n = 4, timesteps = 6;

    EngineConfig cfg;
    cfg.numWorkers = 2;
    cfg.defaultTimesteps = timesteps;
    InferenceEngine engine(
        cfg, makeHybridReplicaFactory(p.floatNet, p.data.firstImages(16),
                                      /*ann_layers=*/1));

    Network ref_source = p.floatNet.clone();
    HybridNetwork reference(ref_source, p.data.firstImages(16), 1);

    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < n; ++i)
        futures.push_back(engine.submit(p.data.image(i)));
    for (int i = 0; i < n; ++i) {
        const InferenceResult result = futures[static_cast<size_t>(i)].get();
        const HybridRunResult expected = reference.run(
            p.data.image(i), timesteps,
            engine.seedFor(static_cast<uint64_t>(i)));
        EXPECT_TRUE(bitIdentical(result.logits, expected.logits))
            << "hybrid logits diverged on image " << i;
        EXPECT_EQ(result.spikes, expected.prefixSpikes);
    }
    engine.shutdown();
}

TEST(Runtime, ConcurrencyStressManyProducers)
{
    Prototypes &p = protos();
    const int producers = 3, per_producer = 80;
    const int total = producers * per_producer;

    // Sequential reference logits per dataset image.
    NebulaChip reference;
    reference.programAnn(p.quantNet, p.quant);
    std::vector<Tensor> expected;
    for (int i = 0; i < p.data.size(); ++i)
        expected.push_back(reference.runAnn(p.data.image(i)));
    const long long evals_per_image =
        reference.stats().crossbarEvals / p.data.size();
    reference.clearStats();

    EngineConfig cfg;
    cfg.numWorkers = 4;
    cfg.queueCapacity = 8; // small: producers hit backpressure
    InferenceEngine engine(cfg, makeAnnReplicaFactory(p.quantNet, p.quant));

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < producers; ++t) {
        threads.emplace_back([&, t] {
            for (int j = 0; j < per_producer; ++j) {
                const int image = (t * per_producer + j) % p.data.size();
                auto future = engine.submit(p.data.image(image));
                const InferenceResult result = future.get();
                if (!bitIdentical(result.logits,
                                  expected[static_cast<size_t>(image)]))
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(mismatches.load(), 0);

    engine.waitIdle();
    EXPECT_EQ(engine.submitted(), static_cast<uint64_t>(total));
    EXPECT_EQ(engine.completed(), static_cast<uint64_t>(total));

    // Worker-local chip stats merge to the sequential totals.
    const ChipStats chip = engine.chipStats();
    EXPECT_EQ(chip.crossbarEvals, evals_per_image * total);

    StatGroup stats = engine.runtimeStats();
    EXPECT_EQ(stats.scalarAt("requests").sum(), total);
    EXPECT_EQ(stats.scalarAt("latency_ms").count(),
              static_cast<uint64_t>(total));
    EXPECT_GE(stats.scalarAt("queue.high_water").sum(), 1.0);
    double per_worker = 0.0;
    for (int w = 0; w < 4; ++w) {
        const std::string name =
            "worker" + std::to_string(w) + ".requests";
        if (stats.hasScalar(name))
            per_worker += stats.scalarAt(name).sum();
    }
    EXPECT_EQ(per_worker, total);
    engine.shutdown();
}

TEST(Runtime, ShutdownWhileBusyDrainsEveryFuture)
{
    Prototypes &p = protos();
    const int n = 24;

    EngineConfig cfg;
    cfg.numWorkers = 2;
    cfg.queueCapacity = 32;
    InferenceEngine engine(cfg, makeAnnReplicaFactory(p.quantNet, p.quant));

    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < n; ++i)
        futures.push_back(engine.submit(p.data.image(i % p.data.size())));

    engine.shutdown(); // while the queue is still full of work
    EXPECT_TRUE(engine.isShutdown());
    for (auto &future : futures) {
        const InferenceResult result = future.get(); // no broken promises
        EXPECT_EQ(result.logits.size(), kClasses);
    }
    EXPECT_EQ(engine.completed(), static_cast<uint64_t>(n));
    EXPECT_THROW(engine.submit(p.data.image(0)), std::runtime_error);
}

TEST(Runtime, ShutdownNowResolvesPendingToTypedEngineStopped)
{
    Prototypes &p = protos();
    const int n = 24;

    EngineConfig cfg;
    cfg.numWorkers = 2;
    cfg.queueCapacity = 32;
    cfg.defaultTimesteps = 12; // slow-ish SNN requests keep workers busy
    InferenceEngine engine(cfg, makeSnnReplicaFactory(p.snn));

    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < n; ++i)
        futures.push_back(engine.submit(p.data.image(i % p.data.size())));

    engine.shutdownNow();
    // Every future resolves to a typed terminal outcome -- evaluated
    // requests carry logits, discarded ones carry EngineStopped; no
    // promise is broken and nothing throws from get().
    int delivered = 0, discarded = 0;
    for (auto &future : futures) {
        const InferenceResult result = future.get();
        if (result.ok()) {
            EXPECT_EQ(result.logits.size(), kClasses);
            ++delivered;
        } else {
            EXPECT_EQ(result.error, RuntimeErrorKind::EngineStopped);
            EXPECT_FALSE(result.errorMessage.empty());
            ++discarded;
        }
    }
    EXPECT_EQ(delivered + discarded, n);
    EXPECT_EQ(engine.completed(), static_cast<uint64_t>(n));
    // Submitting after shutdown still throws the typed exception, which
    // remains catchable as the pre-taxonomy std::runtime_error.
    EXPECT_THROW(engine.submit(p.data.image(0)), EngineStoppedError);
}

TEST(Runtime, TrySubmitRefusesWhenFull)
{
    Prototypes &p = protos();

    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.queueCapacity = 1;
    InferenceEngine engine(cfg, makeAnnReplicaFactory(p.quantNet, p.quant));

    // Saturate: keep try-submitting until the queue refuses one, which
    // proves the backpressure path; everything accepted must complete.
    std::vector<std::future<InferenceResult>> accepted;
    bool refused = false;
    for (int i = 0; i < 64 && !refused; ++i) {
        std::future<InferenceResult> future;
        if (engine.trySubmit(p.data.image(i % p.data.size()), future))
            accepted.push_back(std::move(future));
        else
            refused = true;
    }
    EXPECT_TRUE(refused); // capacity-1 queue must push back
    for (auto &future : accepted)
        EXPECT_EQ(future.get().logits.size(), kClasses);
    engine.shutdown();
    EXPECT_EQ(engine.completed(), engine.submitted());
}

} // namespace
} // namespace nebula
