/**
 * @file
 * Tests for the serving front-end: wire-protocol round trips and
 * fail-soft decoding (truncation at every prefix length, seeded random
 * corruption, bad magic/version/length -- always a typed WireStatus,
 * never a crash or an over-read), a live server surviving raw garbage
 * and mid-frame disconnects while answering typed errors, end-to-end
 * bit-exactness of wire logits against a local replica run with the
 * same explicit seed, the LRU weight-swap scheduler's write-verify
 * accounting, tenant quota isolation (a greedy tenant cannot consume
 * another tenant's service), client pipelining, and the dynamic
 * micro-batching path end to end (pipelined wire traffic coalesced by
 * the gather window stays bit-exact with per-tenant energy attribution
 * summing to the non-batching totals). The suite runs under
 * ThreadSanitizer in CI next to runtime_test.
 *
 * Every servable here uses epochs == 0 (seeded, untrained weights):
 * the serving plumbing under test is training-agnostic and this keeps
 * the suite fast and TSan-friendly.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "nn/datasets.hpp"
#include "obs/metrics.hpp"
#include "runtime/replica.hpp"
#include "runtime/request.hpp"
#include "serving/client.hpp"
#include "serving/models.hpp"
#include "serving/protocol.hpp"
#include "serving/quota.hpp"
#include "serving/registry.hpp"
#include "serving/server.hpp"

namespace nebula {
namespace serving {
namespace {

/** Fast catalog spec: no training, tiny geometry-probe path. */
ServableModelSpec
fastSpec(const std::string &id)
{
    ServableModelSpec spec;
    EXPECT_TRUE(parseServableId(id, spec));
    spec.epochs = 0;
    spec.trainImages = 64;
    return spec;
}

RegistryConfig
fastRegistry(const std::vector<std::string> &ids, size_t capacity)
{
    RegistryConfig cfg;
    for (const std::string &id : ids)
        cfg.catalog.push_back(fastSpec(id));
    cfg.residentCapacity = capacity;
    cfg.workersPerModel = 1;
    cfg.engine.queueCapacity = 64;
    cfg.engine.defaultTimesteps = 6;
    return cfg;
}

Tensor
testImage(uint64_t seed = 3)
{
    SyntheticDigits data(1, 16, seed);
    return data.image(0);
}

WireRequest
sampleRequest()
{
    WireRequest request;
    request.corrId = 0xABCDEF0123456789ull;
    request.mode = WireMode::Hybrid;
    request.timesteps = 12;
    request.deadlineNs = 5'000'000'000ull;
    request.seed = 77;
    request.tenant = "tenant-a";
    request.model = "lenet5";
    request.image = testImage();
    return request;
}

// ---------------------------------------------------------------------------
// Protocol: round trips
// ---------------------------------------------------------------------------

TEST(ServingProtocol, RequestRoundTripIsBitExact)
{
    const WireRequest request = sampleRequest();
    const std::vector<uint8_t> frame = encodeRequestFrame(request);

    FrameHeader header;
    ASSERT_EQ(decodeHeader(frame.data(), kHeaderBytes, 1 << 24, header),
              WireStatus::Ok);
    EXPECT_EQ(header.type, FrameType::Request);
    ASSERT_EQ(frame.size(), kHeaderBytes + header.bodyLen);

    WireRequest decoded;
    ASSERT_EQ(decodeRequestBody(frame.data() + kHeaderBytes, header.bodyLen,
                                decoded),
              WireStatus::Ok);
    EXPECT_EQ(decoded.corrId, request.corrId);
    EXPECT_EQ(decoded.mode, request.mode);
    EXPECT_EQ(decoded.timesteps, request.timesteps);
    EXPECT_EQ(decoded.deadlineNs, request.deadlineNs);
    EXPECT_EQ(decoded.seed, request.seed);
    EXPECT_EQ(decoded.tenant, request.tenant);
    EXPECT_EQ(decoded.model, request.model);
    ASSERT_EQ(decoded.image.shape(), request.image.shape());
    // Floats travel as raw IEEE-754 bits: bit-exact, not approximately.
    ASSERT_EQ(std::memcmp(decoded.image.data(), request.image.data(),
                          sizeof(float) *
                              static_cast<size_t>(request.image.size())),
              0);
}

TEST(ServingProtocol, ResponseRoundTripIsBitExact)
{
    WireResponse response;
    response.corrId = 99;
    response.status = WireStatus::Shed;
    response.predictedClass = 7;
    response.serverMs = 1.25;
    response.message = "queue full";
    response.logits = testImage(11);

    const std::vector<uint8_t> frame = encodeResponseFrame(response);
    FrameHeader header;
    ASSERT_EQ(decodeHeader(frame.data(), kHeaderBytes, 1 << 24, header),
              WireStatus::Ok);
    EXPECT_EQ(header.type, FrameType::Response);

    WireResponse decoded;
    ASSERT_EQ(decodeResponseBody(frame.data() + kHeaderBytes,
                                 header.bodyLen, decoded),
              WireStatus::Ok);
    EXPECT_EQ(decoded.corrId, response.corrId);
    EXPECT_EQ(decoded.status, response.status);
    EXPECT_EQ(decoded.predictedClass, response.predictedClass);
    EXPECT_EQ(decoded.serverMs, response.serverMs);
    EXPECT_EQ(decoded.message, response.message);
    ASSERT_EQ(decoded.logits.shape(), response.logits.shape());
    ASSERT_EQ(std::memcmp(decoded.logits.data(), response.logits.data(),
                          sizeof(float) *
                              static_cast<size_t>(response.logits.size())),
              0);
}

// ---------------------------------------------------------------------------
// Protocol: fail-soft decoding
// ---------------------------------------------------------------------------

TEST(ServingProtocol, TruncationAtEveryPrefixLengthIsTyped)
{
    const std::vector<uint8_t> frame = encodeRequestFrame(sampleRequest());
    FrameHeader header;
    ASSERT_EQ(decodeHeader(frame.data(), kHeaderBytes, 1 << 24, header),
              WireStatus::Ok);

    // Every proper prefix of the body must decode to a typed failure --
    // not Ok, not a crash, not an over-read.
    for (size_t len = 0; len < header.bodyLen; ++len) {
        WireRequest decoded;
        const WireStatus status =
            decodeRequestBody(frame.data() + kHeaderBytes, len, decoded);
        EXPECT_NE(status, WireStatus::Ok) << "prefix length " << len;
    }
    // Truncated headers too.
    for (size_t len = 0; len < kHeaderBytes; ++len) {
        FrameHeader h;
        EXPECT_NE(decodeHeader(frame.data(), len, 1 << 24, h),
                  WireStatus::Ok)
            << "header prefix " << len;
    }
}

TEST(ServingProtocol, SeededCorruptionFuzzNeverCrashes)
{
    const std::vector<uint8_t> clean = encodeRequestFrame(sampleRequest());

    // Deterministic xorshift so CI failures reproduce exactly.
    uint64_t state = 0x5eed5eed5eedull;
    auto next = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };

    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<uint8_t> fuzzed = clean;
        const int flips = 1 + static_cast<int>(next() % 16);
        for (int f = 0; f < flips; ++f)
            fuzzed[next() % fuzzed.size()] ^=
                static_cast<uint8_t>(1u << (next() % 8));
        // Sometimes also truncate.
        if (next() % 4 == 0)
            fuzzed.resize(next() % (fuzzed.size() + 1));

        FrameHeader header;
        if (fuzzed.size() < kHeaderBytes)
            continue; // framing layer would just keep reading
        if (decodeHeader(fuzzed.data(), kHeaderBytes, 1 << 24, header) !=
            WireStatus::Ok)
            continue; // typed header rejection -- fine
        const size_t body =
            std::min(fuzzed.size() - kHeaderBytes,
                     static_cast<size_t>(header.bodyLen));
        WireRequest decoded;
        // Must return *some* typed status without crashing; Ok is
        // acceptable (the flip may have hit payload bytes only).
        (void)decodeRequestBody(fuzzed.data() + kHeaderBytes, body,
                                decoded);
        WireResponse response;
        (void)decodeResponseBody(fuzzed.data() + kHeaderBytes, body,
                                 response);
    }
    SUCCEED();
}

TEST(ServingProtocol, HeaderValidationIsTyped)
{
    const std::vector<uint8_t> frame = encodeRequestFrame(sampleRequest());
    FrameHeader header;

    std::vector<uint8_t> bad_magic = frame;
    bad_magic[0] ^= 0xFF;
    EXPECT_EQ(decodeHeader(bad_magic.data(), kHeaderBytes, 1 << 24, header),
              WireStatus::BadFrame);

    std::vector<uint8_t> bad_version = frame;
    bad_version[4] = 99;
    EXPECT_EQ(
        decodeHeader(bad_version.data(), kHeaderBytes, 1 << 24, header),
        WireStatus::UnsupportedVersion);

    std::vector<uint8_t> bad_type = frame;
    bad_type[5] = 42;
    EXPECT_EQ(decodeHeader(bad_type.data(), kHeaderBytes, 1 << 24, header),
              WireStatus::BadFrame);

    // Oversized length prefix: typed PayloadTooLarge, never an attempt
    // to allocate/read 4 GiB.
    std::vector<uint8_t> huge = frame;
    huge[8] = huge[9] = huge[10] = huge[11] = 0xFF;
    EXPECT_EQ(decodeHeader(huge.data(), kHeaderBytes, 1 << 20, header),
              WireStatus::PayloadTooLarge);
}

TEST(ServingProtocol, OversizedTensorDimsAreRejected)
{
    // Hand-build bodies whose tensor prefix claims more than the
    // decoder's caps allow; it must fail typed rather than trusting the
    // rank/dim product.
    WireRequest decoded;
    std::vector<uint8_t> raw;
    {
        ByteWriter w(raw);
        w.u64(1);          // corrId
        w.u8(0);           // mode
        w.u32(0);          // timesteps
        w.u64(0);          // deadline
        w.u64(0);          // seed
        w.u8(1); w.u8('t');
        w.u8(1); w.u8('m');
        w.u8(kMaxTensorRank + 1); // bogus rank
    }
    EXPECT_NE(decodeRequestBody(raw.data(), raw.size(), decoded),
              WireStatus::Ok);

    raw.clear();
    {
        ByteWriter w(raw);
        w.u64(1);
        w.u8(0);
        w.u32(0);
        w.u64(0);
        w.u64(0);
        w.u8(1); w.u8('t');
        w.u8(1); w.u8('m');
        w.u8(2);                // rank 2
        w.i32(1 << 24);         // dim > kMaxTensorDim
        w.i32(4);
    }
    EXPECT_NE(decodeRequestBody(raw.data(), raw.size(), decoded),
              WireStatus::Ok);
}

// ---------------------------------------------------------------------------
// Quota
// ---------------------------------------------------------------------------

TEST(ServingQuota, TokenBucketRefillsAndCaps)
{
    TenantTable table(TenantQuota{/*ratePerSec=*/1e9, /*burst=*/1e9});
    // Unlimited default: always admits.
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(table.admit("any"));

    TenantTable capped(TenantQuota{/*ratePerSec=*/0.0, /*burst=*/3.0});
    EXPECT_TRUE(capped.admit("t"));
    EXPECT_TRUE(capped.admit("t"));
    EXPECT_TRUE(capped.admit("t"));
    EXPECT_FALSE(capped.admit("t")) << "burst of 3 must cap at 3";
    // Buckets are per-tenant: a different tenant has its own burst.
    EXPECT_TRUE(capped.admit("u"));
}

// ---------------------------------------------------------------------------
// Registry / weight-swap scheduler
// ---------------------------------------------------------------------------

TEST(ServingRegistry, LruSwapAccountsWriteVerifyCost)
{
    ModelRegistry registry(
        fastRegistry({"mlp3/ann", "mlp3/snn"}, /*capacity=*/1));

    EXPECT_EQ(registry.residentCount(), 0u);
    auto a = registry.acquire("mlp3/ann");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(registry.swapIns(), 1u);
    EXPECT_EQ(registry.evictions(), 0u);
    EXPECT_EQ(registry.residentIds(),
              std::vector<std::string>({"mlp3/ann"}));

    // Second model with capacity 1: swap-in + eviction.
    auto b = registry.acquire("mlp3/snn");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(registry.swapIns(), 2u);
    EXPECT_EQ(registry.evictions(), 1u);
    EXPECT_EQ(registry.residentIds(),
              std::vector<std::string>({"mlp3/snn"}));

    // The evicted instance's engine is quiesced and stopped; a holder
    // that submits late gets the typed stop, not a race.
    EXPECT_TRUE(a->engine().isShutdown());
    EXPECT_FALSE(b->engine().isShutdown());

    // Alternate: every acquire is a swap now.
    registry.acquire("mlp3/ann");
    registry.acquire("mlp3/snn");
    EXPECT_EQ(registry.swapIns(), 4u);
    EXPECT_EQ(registry.evictions(), 3u);

    // Swap-ins are costed through write-verify programming.
    const ProgramReport cost = registry.totalSwapCost();
    EXPECT_GT(cost.pulses, 0u);
    EXPECT_GT(cost.programEnergy, 0.0);
    EXPECT_GT(cost.cells, 0u);

    // Unknown id: null, no crash, counters untouched.
    EXPECT_EQ(registry.acquire("vgg16/ann"), nullptr);
    EXPECT_EQ(registry.swapIns(), 4u);
    registry.shutdown();
}

TEST(ServingRegistry, AcquireTouchesLru)
{
    ModelRegistry registry(
        fastRegistry({"mlp3/ann", "mlp3/snn", "mlp3/hybrid"},
                     /*capacity=*/2));
    registry.acquire("mlp3/ann");
    registry.acquire("mlp3/snn");
    // Touch ann so snn becomes LRU; the third model must evict snn.
    registry.acquire("mlp3/ann");
    registry.acquire("mlp3/hybrid");
    const std::vector<std::string> resident = registry.residentIds();
    ASSERT_EQ(resident.size(), 2u);
    EXPECT_EQ(resident[0], "mlp3/hybrid");
    EXPECT_EQ(resident[1], "mlp3/ann");
    registry.shutdown();
}

// ---------------------------------------------------------------------------
// Engine accessors (satellite)
// ---------------------------------------------------------------------------

TEST(ServingEngine, InflightTracksSubmittedMinusCompleted)
{
    auto &loader = ServableLoader::global();
    const ServableModelSpec spec = fastSpec("mlp3/ann");
    EngineConfig cfg;
    cfg.numWorkers = 0; // inline: deterministic counter behaviour
    InferenceEngine engine(cfg, loader.makeFactory(spec));
    EXPECT_EQ(engine.inflight(), 0u);
    auto future = engine.submit(testImage());
    future.get();
    EXPECT_EQ(engine.inflight(), 0u);
    EXPECT_EQ(engine.submitted(), 1u);
    EXPECT_EQ(engine.completed(), 1u);
    EXPECT_EQ(engine.queueDepth(), 0u);
    engine.shutdown();
}

// ---------------------------------------------------------------------------
// Live server: robustness + end-to-end
// ---------------------------------------------------------------------------

class ServingServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto cfg = fastRegistry({"mlp3/ann", "mlp3/snn"}, /*capacity=*/2);
        registry_ = std::make_shared<ModelRegistry>(cfg);
        ServerConfig server_cfg;
        server_cfg.port = 0;
        server_cfg.tenantQuotas["greedy"] =
            TenantQuota{/*ratePerSec=*/0.0, /*burst=*/2.0};
        server_ = std::make_unique<ServingServer>(server_cfg, registry_);
        server_->start();
    }

    void
    TearDown() override
    {
        server_->stop();
        registry_->shutdown();
    }

    /** Raw loopback socket to the server (for malformed traffic). */
    int
    rawConnect()
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server_->port());
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        return fd;
    }

    /** Read one full response frame off a raw socket. */
    bool
    rawReadResponse(int fd, WireResponse &out)
    {
        uint8_t raw_header[kHeaderBytes];
        size_t got = 0;
        while (got < sizeof(raw_header)) {
            const ssize_t n =
                ::recv(fd, raw_header + got, sizeof(raw_header) - got, 0);
            if (n <= 0)
                return false;
            got += static_cast<size_t>(n);
        }
        FrameHeader header;
        if (decodeHeader(raw_header, sizeof(raw_header), 1 << 24,
                         header) != WireStatus::Ok)
            return false;
        std::vector<uint8_t> body(header.bodyLen);
        got = 0;
        while (got < body.size()) {
            const ssize_t n =
                ::recv(fd, body.data() + got, body.size() - got, 0);
            if (n <= 0)
                return false;
            got += static_cast<size_t>(n);
        }
        return decodeResponseBody(body.data(), body.size(), out) ==
               WireStatus::Ok;
    }

    std::shared_ptr<ModelRegistry> registry_;
    std::unique_ptr<ServingServer> server_;
};

TEST_F(ServingServerTest, GarbageGetsTypedErrorThenNextConnectionWorks)
{
    // Raw garbage that cannot be a valid header.
    {
        const int fd = rawConnect();
        const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
        ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, MSG_NOSIGNAL),
                  0);
        WireResponse response;
        ASSERT_TRUE(rawReadResponse(fd, response))
            << "server must answer a typed error before closing";
        EXPECT_EQ(response.status, WireStatus::BadFrame);
        // Stream closes after an unsyncable framing error.
        char byte;
        EXPECT_LE(::recv(fd, &byte, 1, 0), 0);
        ::close(fd);
    }

    // Oversized length prefix: typed PayloadTooLarge.
    {
        const int fd = rawConnect();
        std::vector<uint8_t> frame;
        ByteWriter w(frame);
        w.u32(kWireMagic);
        w.u8(kWireVersion);
        w.u8(static_cast<uint8_t>(FrameType::Request));
        w.u16(0);
        w.u32(0xFFFFFFFFu);
        ASSERT_GT(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL), 0);
        WireResponse response;
        ASSERT_TRUE(rawReadResponse(fd, response));
        EXPECT_EQ(response.status, WireStatus::PayloadTooLarge);
        ::close(fd);
    }

    // The server survived both: a clean client still gets served.
    ServingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    const WireResponse reply =
        client.infer("tenant-x", "mlp3", WireMode::Ann, testImage());
    EXPECT_EQ(reply.status, WireStatus::Ok);
    EXPECT_GE(reply.predictedClass, 0);
}

TEST_F(ServingServerTest, MidFrameDisconnectIsTolerated)
{
    // Send a valid header promising a body, then vanish mid-frame.
    const int fd = rawConnect();
    WireRequest request = sampleRequest();
    request.model = "mlp3";
    const std::vector<uint8_t> frame = encodeRequestFrame(request);
    ASSERT_GT(::send(fd, frame.data(), frame.size() / 2, MSG_NOSIGNAL), 0);
    ::close(fd);

    // And a torn header too.
    const int fd2 = rawConnect();
    ASSERT_GT(::send(fd2, frame.data(), 3, MSG_NOSIGNAL), 0);
    ::close(fd2);

    // Server is unharmed.
    ServingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    EXPECT_EQ(client.infer("tenant-x", "mlp3", WireMode::Ann, testImage())
                  .status,
              WireStatus::Ok);
}

TEST_F(ServingServerTest, UnknownModelAndBadModeAreTyped)
{
    ServingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    EXPECT_EQ(client.infer("t", "vgg16", WireMode::Ann, testImage()).status,
              WireStatus::UnknownModel);
    // Known family, mode not in catalog (only ann/snn are).
    EXPECT_EQ(
        client.infer("t", "mlp3", WireMode::Hybrid, testImage()).status,
        WireStatus::UnknownModel);
    // Wrong input shape: typed BadRequest, stream stays usable.
    EXPECT_EQ(client
                  .infer("t", "mlp3", WireMode::Ann,
                         Tensor({1, 4, 4}))
                  .status,
              WireStatus::BadRequest);
    EXPECT_EQ(client.infer("t", "mlp3", WireMode::Ann, testImage()).status,
              WireStatus::Ok);
}

TEST_F(ServingServerTest, WireLogitsBitExactAgainstLocalReplica)
{
    const uint64_t seed = 12345;
    const int timesteps = 6;
    const Tensor image = testImage(21);

    // Wire run: explicit seed, SNN mode (seed-sensitive path).
    ServingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    ServeOptions options;
    options.timesteps = timesteps;
    options.seed = seed;
    const WireResponse reply =
        client.infer("tenant-x", "mlp3", WireMode::Snn, image, options);
    ASSERT_EQ(reply.status, WireStatus::Ok);

    // Local reference: same spec, same reliability scenario (the
    // registry programs under defaultSwapAccounting), same seed.
    const ServableModelSpec spec = fastSpec("mlp3/snn");
    auto factory = ServableLoader::global().makeFactory(
        spec, defaultSwapAccounting());
    auto replica = factory(0);
    InferenceRequest request;
    request.image = image;
    request.timesteps = timesteps;
    request.seed = seed;
    const InferenceResult local = replica->run(request);

    ASSERT_TRUE(local.ok());
    EXPECT_EQ(reply.predictedClass, local.predictedClass);
    ASSERT_EQ(reply.logits.shape(), local.logits.shape());
    ASSERT_EQ(std::memcmp(reply.logits.data(), local.logits.data(),
                          sizeof(float) *
                              static_cast<size_t>(local.logits.size())),
              0)
        << "wire round trip must preserve raw float bits";
}

TEST_F(ServingServerTest, GreedyTenantCannotStarveAnother)
{
    // "greedy" has a burst-2, zero-refill quota; "polite" runs on the
    // unlimited default. Outcome-based (no timing): greedy gets exactly
    // its burst served, every other greedy request resolves
    // QuotaExceeded, and polite's requests all succeed.
    ServingClient greedy;
    ServingClient polite;
    ASSERT_TRUE(greedy.connect("127.0.0.1", server_->port()));
    ASSERT_TRUE(polite.connect("127.0.0.1", server_->port()));

    const int n = 12;
    std::vector<std::future<WireResponse>> greedy_futures;
    std::vector<std::future<WireResponse>> polite_futures;
    for (int i = 0; i < n; ++i)
        greedy_futures.push_back(greedy.inferAsync(
            "greedy", "mlp3", WireMode::Ann, testImage()));
    for (int i = 0; i < n; ++i)
        polite_futures.push_back(polite.inferAsync(
            "polite", "mlp3", WireMode::Ann, testImage()));

    int greedy_ok = 0, greedy_quota = 0;
    for (auto &f : greedy_futures) {
        const WireResponse r = f.get();
        if (r.status == WireStatus::Ok)
            ++greedy_ok;
        else if (r.status == WireStatus::QuotaExceeded)
            ++greedy_quota;
        else
            FAIL() << "unexpected greedy status " << toString(r.status);
    }
    EXPECT_EQ(greedy_ok, 2) << "burst of 2, zero refill";
    EXPECT_EQ(greedy_quota, n - 2);

    for (auto &f : polite_futures)
        EXPECT_EQ(f.get().status, WireStatus::Ok)
            << "polite tenant must be untouched by greedy's pressure";
}

TEST_F(ServingServerTest, PipelinedRequestsAllResolveInOrder)
{
    ServingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    const int n = 16;
    std::vector<std::future<WireResponse>> futures;
    for (int i = 0; i < n; ++i)
        futures.push_back(client.inferAsync(
            "tenant-x", i % 2 == 0 ? "mlp3" : "mlp3",
            i % 2 == 0 ? WireMode::Ann : WireMode::Snn, testImage(i)));
    for (auto &f : futures) {
        const WireResponse r = f.get();
        EXPECT_EQ(r.status, WireStatus::Ok);
        EXPECT_GE(r.predictedClass, 0);
    }
    // Determinism: identical request (explicit seed) twice -> identical
    // logits, pipelined or not.
    ServeOptions options;
    options.seed = 5;
    options.timesteps = 6;
    const WireResponse a =
        client.infer("tenant-x", "mlp3", WireMode::Snn, testImage(), options);
    const WireResponse b =
        client.infer("tenant-x", "mlp3", WireMode::Snn, testImage(), options);
    ASSERT_EQ(a.status, WireStatus::Ok);
    ASSERT_EQ(b.status, WireStatus::Ok);
    ASSERT_EQ(a.logits.shape(), b.logits.shape());
    EXPECT_EQ(std::memcmp(a.logits.data(), b.logits.data(),
                          sizeof(float) *
                              static_cast<size_t>(a.logits.size())),
              0);
}

TEST(ServingBatching, PipelinedBatchesBitExactWithEnergyAttribution)
{
    // A single-worker batching registry: one pipelined client floods the
    // model's engine so the worker's gather window coalesces wire
    // requests into multi-request flushes. The wire answers must stay
    // bit-exact against a local replica, and the per-tenant energy
    // billed through the batched path must sum to what the same traffic
    // costs on an identical non-batching server.
    const int n = 16;
    auto &metrics = obs::MetricsRegistry::global();
    const double flushes_before = metrics.counterValue("runtime.batch.flush");

    auto runServer = [&](bool batching, const std::string &tenant,
                         std::vector<Tensor> *logits_out) {
        auto cfg = fastRegistry({"mlp3/ann"}, /*capacity=*/1);
        if (batching) {
            cfg.engine.batching.maxBatch = 8;
            cfg.engine.batching.maxWaitUs = 5000;
        }
        auto registry = std::make_shared<ModelRegistry>(cfg);
        ServerConfig server_cfg;
        server_cfg.port = 0;
        ServingServer server(server_cfg, registry);
        server.start();

        ServingClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
        ServeOptions options;
        options.seed = 777; // explicit seed: reproducible on a replica
        std::vector<std::future<WireResponse>> futures;
        for (int i = 0; i < n; ++i)
            futures.push_back(client.inferAsync(tenant, "mlp3",
                                                WireMode::Ann,
                                                testImage(i), options));
        for (auto &f : futures) {
            const WireResponse r = f.get();
            ASSERT_EQ(r.status, WireStatus::Ok);
            logits_out->push_back(r.logits);
        }
        server.stop();
        registry->shutdown();
    };

    // Unique tenants isolate the cumulative global telemetry counters.
    std::vector<Tensor> batched, solo;
    runServer(true, "batch-eq-batched", &batched);
    runServer(false, "batch-eq-solo", &solo);
    ASSERT_EQ(batched.size(), static_cast<size_t>(n));
    ASSERT_EQ(solo.size(), static_cast<size_t>(n));

    // Wire logits: batched server == non-batching server == a local
    // replica of the same servable, raw float bits.
    const ServableModelSpec spec = fastSpec("mlp3/ann");
    auto factory = ServableLoader::global().makeFactory(
        spec, defaultSwapAccounting());
    auto replica = factory(0);
    for (int i = 0; i < n; ++i) {
        InferenceRequest request;
        request.image = testImage(i);
        request.seed = 777;
        const InferenceResult local = replica->run(request);
        ASSERT_TRUE(local.ok());
        for (const auto *wire : {&batched[static_cast<size_t>(i)],
                                 &solo[static_cast<size_t>(i)]}) {
            ASSERT_EQ(wire->shape(), local.logits.shape());
            EXPECT_EQ(std::memcmp(wire->data(), local.logits.data(),
                                  sizeof(float) * static_cast<size_t>(
                                                      local.logits.size())),
                      0)
                << "wire logits diverged from local replica on image " << i;
        }
    }

    // The batching server really coalesced at least one flush.
    EXPECT_GT(metrics.counterValue("runtime.batch.flush"), flushes_before);

    // Per-request energy attribution is preserved: the joules billed to
    // the batched tenant sum to the non-batching totals for the same
    // traffic (tolerance covers FP re-association between the per-image
    // slices and the solo path's running-total deltas).
    const double batched_j = metrics.counterValue(
        "telemetry.tenant.energy_j", {{"tenant", "batch-eq-batched"}});
    const double solo_j = metrics.counterValue(
        "telemetry.tenant.energy_j", {{"tenant", "batch-eq-solo"}});
    const double batched_count = metrics.counterValue(
        "telemetry.tenant.inferences", {{"tenant", "batch-eq-batched"}});
    EXPECT_DOUBLE_EQ(batched_count, static_cast<double>(n));
    ASSERT_GT(solo_j, 0.0);
    EXPECT_NEAR(batched_j, solo_j, 1e-6 * solo_j);
}

TEST_F(ServingServerTest, ClientSurvivesServerStop)
{
    ServingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    ASSERT_EQ(client.infer("t", "mlp3", WireMode::Ann, testImage()).status,
              WireStatus::Ok);
    server_->stop();
    // Requests after the server is gone resolve client-locally typed --
    // never hang, never throw.
    const WireResponse reply =
        client.infer("t", "mlp3", WireMode::Ann, testImage());
    EXPECT_TRUE(reply.status == WireStatus::ConnectionLost ||
                reply.status == WireStatus::SendFailed)
        << toString(reply.status);
}

} // namespace
} // namespace serving
} // namespace nebula
