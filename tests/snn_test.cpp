/**
 * @file
 * SNN tests: IF dynamics, Poisson encoding statistics, ANN-to-SNN
 * conversion fidelity (rate ~ ReLU property, Table I behaviour at small
 * scale) and hybrid SNN-ANN networks (Table II behaviour).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/pooling.hpp"
#include "nn/trainer.hpp"
#include "snn/convert.hpp"
#include "snn/encoder.hpp"
#include "snn/hybrid.hpp"
#include "snn/if_layer.hpp"
#include "snn/snn_sim.hpp"

namespace nebula {
namespace {

TEST(IfLayer, IntegratesToThreshold)
{
    IfLayer neuron(1.0f);
    Tensor x({1, 1}, {0.4f});
    EXPECT_EQ(neuron.forward(x)[0], 0.0f); // u = 0.4
    EXPECT_EQ(neuron.forward(x)[0], 0.0f); // u = 0.8
    EXPECT_EQ(neuron.forward(x)[0], 1.0f); // u = 1.2 -> spike
    EXPECT_EQ(neuron.spikeCount(), 1);
    // Hard reset: membrane back to zero.
    EXPECT_EQ(neuron.membrane()[0], 0.0f);
}

TEST(IfLayer, SubtractResetKeepsResidual)
{
    IfLayer neuron(1.0f, ResetMode::Subtract);
    Tensor x({1, 1}, {0.7f});
    neuron.forward(x);
    neuron.forward(x); // u = 1.4 -> spike, residual 0.4
    EXPECT_NEAR(neuron.membrane()[0], 0.4f, 1e-6f);
}

TEST(IfLayer, RateTracksInputHardReset)
{
    // With constant input x in (0, 1) and hard reset, the firing rate is
    // 1 / ceil(vth / x) -- a staircase approximation of x.
    IfLayer neuron(1.0f);
    const float x = 0.3f;
    Tensor in({1, 1}, {x});
    const int T = 1000;
    for (int t = 0; t < T; ++t)
        neuron.forward(in);
    const double rate = neuron.spikeCount() / static_cast<double>(T);
    EXPECT_NEAR(rate, 1.0 / std::ceil(1.0 / x), 0.01);
}

TEST(IfLayer, SubtractResetRateIsExact)
{
    // Soft reset preserves the residual, so rate -> x exactly.
    IfLayer neuron(1.0f, ResetMode::Subtract);
    const float x = 0.37f;
    Tensor in({1, 1}, {x});
    const int T = 1000;
    for (int t = 0; t < T; ++t)
        neuron.forward(in);
    EXPECT_NEAR(neuron.spikeCount() / static_cast<double>(T), x, 0.01);
}

TEST(IfLayer, ResetStateClearsEverything)
{
    IfLayer neuron(1.0f);
    Tensor x({2, 3});
    x.fill(2.0f);
    neuron.forward(x);
    EXPECT_EQ(neuron.spikeCount(), 6);
    neuron.resetState();
    EXPECT_EQ(neuron.spikeCount(), 0);
    EXPECT_EQ(neuron.neuronCount(), 0);
}

TEST(IfLayer, NeverFiresBelowThreshold)
{
    IfLayer neuron(10.0f);
    Tensor x({1, 4});
    x.fill(0.01f);
    for (int t = 0; t < 100; ++t)
        neuron.forward(x);
    EXPECT_EQ(neuron.spikeCount(), 0);
}

TEST(Encoder, RateMatchesIntensity)
{
    PoissonEncoder encoder(1.0, 5);
    Tensor image({1, 10, 10});
    image.fill(0.25f);
    long long spikes = 0;
    const int T = 400;
    for (int t = 0; t < T; ++t)
        spikes += static_cast<long long>(encoder.encode(image).sum());
    const double rate = spikes / (100.0 * T);
    EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Encoder, RateScaleApplies)
{
    PoissonEncoder encoder(0.5, 6);
    Tensor image({1, 8, 8});
    image.fill(1.0f);
    long long spikes = 0;
    const int T = 400;
    for (int t = 0; t < T; ++t)
        spikes += static_cast<long long>(encoder.encode(image).sum());
    EXPECT_NEAR(spikes / (64.0 * T), 0.5, 0.03);
}

TEST(Encoder, BinaryOutput)
{
    PoissonEncoder encoder(1.0, 7);
    Tensor image({1, 4, 4});
    image.fill(0.5f);
    Tensor spikes = encoder.encode(image);
    for (long long i = 0; i < spikes.size(); ++i)
        EXPECT_TRUE(spikes[i] == 0.0f || spikes[i] == 1.0f);
}

TEST(Encoder, ResetReproducesTrain)
{
    PoissonEncoder encoder(1.0, 8);
    Tensor image({1, 4, 4});
    image.fill(0.5f);
    Tensor a = encoder.encode(image);
    encoder.reset();
    Tensor b = encoder.encode(image);
    for (long long i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

/** Train a small MLP for conversion tests. */
Network
trainedMlp(const SyntheticDigits &train_set)
{
    Network net = buildMlp3(16, 1, 10, 21);
    TrainConfig cfg;
    cfg.epochs = 5;
    SgdTrainer trainer(cfg);
    trainer.train(net, train_set);
    return net;
}

TEST(Conversion, StructureIsSpiking)
{
    SyntheticDigits train_set(600, 16, 31);
    Network net = trainedMlp(train_set);
    SpikingModel model = convertToSnn(net, train_set.firstImages(32));

    // Two hidden ReLUs -> two IF layers; weight layers preserved.
    EXPECT_EQ(model.ifLayerIndices.size(), 2u);
    EXPECT_EQ(model.net.weightLayerIndices().size(), 3u);
    EXPECT_EQ(model.lambdas.size(),
              static_cast<size_t>(model.net.numLayers()));
}

TEST(Conversion, IfInsertedAfterPool)
{
    Network conv_net("poolnet");
    conv_net.add<Conv2d>(1, 4, 3, 1, 1);
    conv_net.add<Relu>();
    conv_net.add<AvgPool2d>(2);
    conv_net.add<Flatten>();
    conv_net.add<Linear>(4 * 4 * 4, 10);

    Tensor calibration({4, 1, 8, 8});
    Rng rng2(6);
    calibration.uniform(rng2, 0.0f, 1.0f);
    SpikingModel model = convertToSnn(conv_net, calibration);
    // IF for the ReLU + IF after the pool.
    EXPECT_EQ(model.ifLayerIndices.size(), 2u);
    // Pool followed directly by an IF layer.
    bool pool_then_if = false;
    for (int i = 0; i + 1 < model.net.numLayers(); ++i)
        if (model.net.layer(i).kind() == LayerKind::AvgPool &&
            model.net.layer(i + 1).kind() == LayerKind::If)
            pool_then_if = true;
    EXPECT_TRUE(pool_then_if);
}

TEST(Conversion, MaxPoolRejected)
{
    Network net("bad");
    net.add<Conv2d>(1, 2, 3, 1, 1);
    net.add<Relu>();
    net.add<MaxPool2d>(2);
    net.add<Flatten>();
    net.add<Linear>(2 * 4 * 4, 10);

    Tensor calibration({2, 1, 8, 8});
    EXPECT_DEATH(
        { convertToSnn(net, calibration); }, "max pooling");
}

TEST(Conversion, SnnAccuracyApproachesAnn)
{
    // Small-scale Table I: the converted SNN should come within a few
    // points of the ANN given enough timesteps.
    SyntheticDigits train_set(1200, 16, 33);
    SyntheticDigits test_set(200, 16, 34);
    Network net = trainedMlp(train_set);
    const double ann_acc = evaluateAccuracy(net, test_set);
    ASSERT_GT(ann_acc, 0.85);

    SpikingModel model = convertToSnn(net, train_set.firstImages(64));
    SnnSimulator sim(model, 1.0, 99);
    const double snn_acc = sim.evaluateAccuracy(test_set, 100, 60);
    EXPECT_GT(snn_acc, ann_acc - 0.08);
}

TEST(Conversion, MoreTimestepsMoreAccuracy)
{
    SyntheticDigits train_set(1200, 16, 35);
    SyntheticDigits test_set(120, 16, 36);
    Network net = trainedMlp(train_set);

    SpikingModel model = convertToSnn(net, train_set.firstImages(64));
    SnnSimulator sim(model, 1.0, 100);
    const double acc_short = sim.evaluateAccuracy(test_set, 120, 3);
    const double acc_long = sim.evaluateAccuracy(test_set, 120, 60);
    EXPECT_GE(acc_long, acc_short - 0.02);
    EXPECT_GT(acc_long, 0.8);
}

TEST(Simulator, ActivityStatsPopulated)
{
    SyntheticDigits train_set(600, 16, 37);
    Network net = trainedMlp(train_set);
    SpikingModel model = convertToSnn(net, train_set.firstImages(32));
    SnnSimulator sim(model, 1.0, 101);

    const SnnRunResult result = sim.run(train_set.image(0), 40);
    EXPECT_EQ(result.timesteps, 40);
    EXPECT_EQ(result.ifActivity.size(), 2u);
    for (double a : result.ifActivity) {
        EXPECT_GE(a, 0.0);
        EXPECT_LE(a, 1.0);
    }
    EXPECT_GT(result.inputRate, 0.0);
    EXPECT_GT(result.totalSpikes, 0);
}

TEST(Simulator, ScaledRateMapCorrelatesWithAnnActivations)
{
    // Fig. 10 machinery: the SNN rate map scaled by lambda should
    // correlate strongly with the ANN feature map at the same depth.
    SyntheticDigits train_set(1200, 16, 38);
    Network net = trainedMlp(train_set);

    const Tensor calibration = train_set.firstImages(64);
    SpikingModel model = convertToSnn(net, calibration);
    SnnSimulator sim(model, 1.0, 102);

    const Tensor &image = train_set.image(5);
    sim.run(image, 200);
    Tensor snn_map = sim.scaledRateMap(0);

    // ANN activations at the first ReLU.
    std::vector<Tensor> outputs;
    net.forwardCollect(image.reshaped({1, 1, 16, 16}), outputs);
    // Layer order: flatten, linear, relu -> index 2.
    const Tensor &ann_map = outputs[2];
    ASSERT_EQ(ann_map.size(), snn_map.size());
    EXPECT_GT(correlation(ann_map, snn_map), 0.8);
}

TEST(Simulator, DeterministicGivenSeed)
{
    SyntheticDigits train_set(600, 16, 39);
    Network net = trainedMlp(train_set);
    SpikingModel model = convertToSnn(net, train_set.firstImages(32));

    SnnSimulator sim_a(model, 1.0, 7);
    const auto a = sim_a.run(train_set.image(0), 30);
    SnnSimulator sim_b(model, 1.0, 7);
    const auto b = sim_b.run(train_set.image(0), 30);
    EXPECT_EQ(a.totalSpikes, b.totalSpikes);
    for (long long i = 0; i < a.logits.size(); ++i)
        EXPECT_FLOAT_EQ(a.logits[i], b.logits[i]);
}

TEST(Hybrid, SplitsAtRequestedDepth)
{
    SyntheticDigits train_set(600, 16, 40);
    Network net = trainedMlp(train_set);
    HybridNetwork hybrid(net, train_set.firstImages(32), 1);
    EXPECT_EQ(hybrid.annLayers(), 1);
    EXPECT_EQ(hybrid.spikingLayers(), 2);
}

TEST(Hybrid, AccuracyAtFewTimestepsBeatsPureSnn)
{
    // Table II behaviour: at small T the hybrid model (ANN tail) should
    // be at least as accurate as the pure SNN.
    SyntheticDigits train_set(1200, 16, 41);
    SyntheticDigits test_set(120, 16, 42);
    Network net = trainedMlp(train_set);
    const Tensor calibration = train_set.firstImages(64);

    const int T = 8;

    Network net_copy = buildMlp3(16, 1, 10, 21);
    net_copy.copyStateFrom(net);
    SpikingModel snn = convertToSnn(net_copy, calibration);
    SnnSimulator sim(snn, 1.0, 103);
    const double snn_acc = sim.evaluateAccuracy(test_set, 120, T);

    HybridNetwork hybrid(net, calibration, 1, {}, 104);
    const double hybrid_acc = hybrid.evaluateAccuracy(test_set, 120, T);

    EXPECT_GE(hybrid_acc, snn_acc - 0.03);
    EXPECT_GT(hybrid_acc, 0.5);
}

TEST(Hybrid, RunStatsPopulated)
{
    SyntheticDigits train_set(600, 16, 43);
    Network net = trainedMlp(train_set);
    HybridNetwork hybrid(net, train_set.firstImages(32), 1);
    const HybridRunResult result = hybrid.run(train_set.image(0), 20);
    EXPECT_EQ(result.logits.shape(), (std::vector<int>{1, 10}));
    EXPECT_GT(result.prefixSpikes, 0);
    EXPECT_GE(result.auAccumulations, 0);
    EXPECT_GT(hybrid.boundaryNeurons(), 0);
}

TEST(Hybrid, RejectsDegenerateSplits)
{
    SyntheticDigits train_set(300, 16, 44);
    Network net = trainedMlp(train_set);
    const Tensor calibration = train_set.firstImages(16);
    EXPECT_DEATH({ HybridNetwork h(net, calibration, 0); }, "hybrid split");
    EXPECT_DEATH({ HybridNetwork h(net, calibration, 3); }, "hybrid split");
}


TEST(IfExtensions, LeakDecaysMembrane)
{
    IfOptions opts;
    opts.leak = 0.5f;
    IfLayer neuron(1.0f, ResetMode::Zero, opts);
    Tensor x({1, 1}, {0.4f});
    neuron.forward(x); // u = 0.4
    Tensor zero({1, 1});
    neuron.forward(zero); // u = 0.2
    neuron.forward(zero); // u = 0.1
    EXPECT_NEAR(neuron.membrane()[0], 0.1f, 1e-6f);
}

TEST(IfExtensions, LeakLowersFiringRate)
{
    IfLayer plain(1.0f, ResetMode::Subtract);
    IfOptions opts;
    opts.leak = 0.3f;
    IfLayer leaky(1.0f, ResetMode::Subtract, opts);
    Tensor x({1, 1}, {0.4f});
    for (int t = 0; t < 200; ++t) {
        plain.forward(x);
        leaky.forward(x);
    }
    EXPECT_LT(leaky.spikeCount(), plain.spikeCount());
}

TEST(IfExtensions, RefractoryCapsRate)
{
    IfOptions opts;
    opts.refractory = 3;
    IfLayer neuron(1.0f, ResetMode::Zero, opts);
    Tensor x({1, 1}, {5.0f}); // would fire every step without refractory
    int spikes = 0;
    const int T = 100;
    for (int t = 0; t < T; ++t)
        spikes += static_cast<int>(neuron.forward(x)[0]);
    // One spike then 3 silent steps -> rate 1/4.
    EXPECT_NEAR(spikes / static_cast<double>(T), 0.25, 0.02);
}

TEST(IfExtensions, RefractoryIgnoresInput)
{
    IfOptions opts;
    opts.refractory = 2;
    IfLayer neuron(1.0f, ResetMode::Zero, opts);
    Tensor big({1, 1}, {2.0f});
    EXPECT_EQ(neuron.forward(big)[0], 1.0f); // fires
    // During refractory the membrane must not integrate.
    neuron.forward(big);
    EXPECT_EQ(neuron.membrane()[0], 0.0f);
    neuron.forward(big);
    EXPECT_EQ(neuron.membrane()[0], 0.0f);
    // Back to normal afterwards.
    EXPECT_EQ(neuron.forward(big)[0], 1.0f);
}

TEST(IfExtensions, CloneCarriesOptions)
{
    IfOptions opts;
    opts.leak = 0.2f;
    opts.refractory = 5;
    IfLayer neuron(2.0f, ResetMode::Subtract, opts);
    LayerPtr copy = neuron.clone();
    auto *dup = static_cast<IfLayer *>(copy.get());
    EXPECT_FLOAT_EQ(dup->threshold(), 2.0f);
    EXPECT_FLOAT_EQ(dup->options().leak, 0.2f);
    EXPECT_EQ(dup->options().refractory, 5);
    EXPECT_EQ(dup->resetMode(), ResetMode::Subtract);
}

TEST(IfExtensions, DefaultsMatchPlainIf)
{
    // The default options must reproduce the paper's leak-free,
    // refractory-free neuron exactly.
    IfLayer plain(1.0f, ResetMode::Subtract);
    IfLayer configured(1.0f, ResetMode::Subtract, IfOptions{});
    Tensor x({1, 3}, {0.3f, 0.7f, 1.4f});
    for (int t = 0; t < 50; ++t) {
        Tensor a = plain.forward(x);
        Tensor b = configured.forward(x);
        for (long long i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]);
    }
}

} // namespace
} // namespace nebula
