/**
 * @file
 * Tests for the live telemetry plane: WindowedHistogram rotation and
 * merge determinism (explicit time points, no wall-clock dependence),
 * SLO burn-rate semantics (client-caused outcomes excluded, over-target
 * successes burn budget), the shared label-escaping rule and the
 * Prometheus text exposition (one TYPE line per family, parseable line
 * grammar), wire-protocol version compatibility (v1 frames decode with
 * trace id 0, v2 round-trips the id, unknown versions are typed),
 * per-request energy attribution from the chip model, admin-endpoint
 * HTTP behavior and /statusz JSON validity under concurrent load, and
 * cross-process flow events linking client -> server -> worker spans.
 * The suite runs under ThreadSanitizer in CI.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "nn/datasets.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "serving/admin.hpp"
#include "serving/client.hpp"
#include "serving/models.hpp"
#include "serving/protocol.hpp"
#include "serving/registry.hpp"
#include "serving/server.hpp"

namespace nebula {
namespace {

using obs::SloConfig;
using obs::SloSnapshot;
using obs::SloTracker;
using obs::WindowedCounter;
using obs::WindowedHistogram;

using Clock = WindowedHistogram::Clock;

// ---------------------------------------------------------------------------
// WindowedHistogram / WindowedCounter
// ---------------------------------------------------------------------------

TEST(WindowedHistogram, SamplesAgeOutAfterTheWindow)
{
    const auto t0 = Clock::now();
    WindowedHistogram hist(0.0, 100.0, 100, /*sub_windows=*/4,
                           std::chrono::seconds(4), t0);
    EXPECT_EQ(hist.subWindows(), 4);
    EXPECT_EQ(hist.subWindowDuration(), std::chrono::seconds(1));

    hist.record(10.0, t0);
    hist.record(20.0, t0 + std::chrono::milliseconds(500));
    EXPECT_EQ(hist.merged(t0 + std::chrono::milliseconds(900)).count(), 2);

    // Still inside the rolling window: both samples visible.
    EXPECT_EQ(hist.merged(t0 + std::chrono::seconds(3)).count(), 2);

    // 4+ sub-windows later the slot holding them has been recycled.
    EXPECT_EQ(hist.merged(t0 + std::chrono::seconds(5)).count(), 0);
    EXPECT_GT(hist.rotations(), 0);
}

TEST(WindowedHistogram, IdenticalFeedsMergeIdentically)
{
    const auto t0 = Clock::now();
    WindowedHistogram a(0.0, 50.0, 50, 6, std::chrono::seconds(6), t0);
    WindowedHistogram b(0.0, 50.0, 50, 6, std::chrono::seconds(6), t0);
    for (int i = 0; i < 200; ++i) {
        const auto ts = t0 + std::chrono::milliseconds(25 * i);
        const double v = static_cast<double>(i % 50);
        a.record(v, ts);
        b.record(v, ts);
    }
    const auto query = t0 + std::chrono::seconds(5);
    Histogram ha = a.merged(query);
    Histogram hb = b.merged(query);
    ASSERT_EQ(ha.count(), hb.count());
    EXPECT_DOUBLE_EQ(ha.sum(), hb.sum());
    EXPECT_DOUBLE_EQ(ha.p50(), hb.p50());
    EXPECT_DOUBLE_EQ(ha.p99(), hb.p99());
    EXPECT_EQ(ha.bins(), hb.bins());
}

TEST(WindowedHistogram, LongIdleGapClearsEverySubWindow)
{
    const auto t0 = Clock::now();
    WindowedHistogram hist(0.0, 10.0, 10, 3, std::chrono::seconds(3), t0);
    hist.record(5.0, t0);
    // A gap far larger than the ring must not over-rotate (epoch jumps
    // by thousands; only ring-size slots exist to clear).
    EXPECT_EQ(hist.merged(t0 + std::chrono::hours(2)).count(), 0);
    hist.record(7.0, t0 + std::chrono::hours(2));
    EXPECT_EQ(hist.merged(t0 + std::chrono::hours(2)).count(), 1);
}

TEST(WindowedCounter, SumTracksTheRollingWindow)
{
    const auto t0 = Clock::now();
    WindowedCounter counter(4, std::chrono::seconds(4), t0);
    counter.record(1.0, t0);
    counter.record(2.0, t0 + std::chrono::seconds(1));
    counter.record(4.0, t0 + std::chrono::seconds(2));
    EXPECT_DOUBLE_EQ(counter.sum(t0 + std::chrono::seconds(2)), 7.0);
    // The t0 slot ages out first.
    EXPECT_DOUBLE_EQ(counter.sum(t0 + std::chrono::seconds(4)), 6.0);
    EXPECT_DOUBLE_EQ(counter.sum(t0 + std::chrono::seconds(60)), 0.0);
}

// ---------------------------------------------------------------------------
// SloTracker
// ---------------------------------------------------------------------------

TEST(SloTracker, BurnRateReflectsServerOwnedBadness)
{
    SloConfig config;
    config.targetMs = 50.0;
    config.objective = 0.99;
    SloTracker tracker(config);
    const auto t0 = Clock::now();

    // 98 fast successes, 1 server error, 1 over-target success.
    for (int i = 0; i < 98; ++i)
        tracker.record("t0", "m/ann", 5.0, false, false, t0);
    tracker.record("t0", "m/ann", 5.0, /*server_error=*/true, false, t0);
    tracker.record("t0", "m/ann", 200.0, false, false, t0);

    const SloSnapshot snap = tracker.snapshot("t0", "m/ann", t0);
    EXPECT_DOUBLE_EQ(snap.good, 98.0);
    EXPECT_DOUBLE_EQ(snap.bad, 2.0);
    EXPECT_DOUBLE_EQ(snap.errorRate(), 0.02);
    // 2% bad against a 1% budget burns at rate 2.
    EXPECT_NEAR(snap.burnRate, 2.0, 1e-9);
    EXPECT_TRUE(snap.budgetExhausted());
}

TEST(SloTracker, ClientErrorsAreExcludedFromTheBudget)
{
    SloTracker tracker;
    const auto t0 = Clock::now();
    tracker.record("t0", "m/ann", 1.0, false, false, t0);
    for (int i = 0; i < 50; ++i)
        tracker.record("t0", "m/ann", 0.0, false, /*client_error=*/true,
                       t0);
    const SloSnapshot snap = tracker.snapshot("t0", "m/ann", t0);
    EXPECT_DOUBLE_EQ(snap.good, 1.0);
    EXPECT_DOUBLE_EQ(snap.bad, 0.0);
    EXPECT_DOUBLE_EQ(snap.excluded, 50.0);
    EXPECT_DOUBLE_EQ(snap.burnRate, 0.0);
    EXPECT_FALSE(snap.budgetExhausted());
}

TEST(SloTracker, CellsAreIsolatedAndSorted)
{
    SloTracker tracker;
    const auto t0 = Clock::now();
    tracker.record("tb", "m/snn", 1.0, false, false, t0);
    tracker.record("ta", "m/ann", 1.0, true, false, t0);
    const std::vector<SloSnapshot> all = tracker.snapshotAll(t0);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].tenant, "ta");
    EXPECT_DOUBLE_EQ(all[0].bad, 1.0);
    EXPECT_EQ(all[1].tenant, "tb");
    EXPECT_DOUBLE_EQ(all[1].good, 1.0);
}

TEST(SloTracker, ExportToRegistryEmitsLabeledGauges)
{
    obs::MetricsRegistry registry("test");
    SloTracker tracker;
    const auto t0 = Clock::now();
    for (int i = 0; i < 10; ++i)
        tracker.record("acme", "mlp3/ann", 7.0, false, false, t0);
    tracker.exportTo(registry, t0);
    const obs::Labels labels = {{"tenant", "acme"}, {"model", "mlp3/ann"}};
    EXPECT_DOUBLE_EQ(registry.gaugeValue("slo.good", labels), 10.0);
    EXPECT_DOUBLE_EQ(registry.gaugeValue("slo.burn_rate", labels), 0.0);
    EXPECT_GT(registry.gaugeValue("slo.p99_ms", labels), 0.0);
}

// ---------------------------------------------------------------------------
// Label escaping + Prometheus exposition
// ---------------------------------------------------------------------------

TEST(MetricsEscaping, LabelValuesEscapeUnambiguously)
{
    EXPECT_EQ(obs::escapeLabelValue("plain"), "plain");
    EXPECT_EQ(obs::escapeLabelValue("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::escapeLabelValue("a\nb"), "a\\nb");

    // Two values that would collide unescaped must produce distinct
    // canonical keys.
    const std::string k1 =
        obs::labeledName("m", {{"k", "v\"},x={\"y"}});
    const std::string k2 = obs::labeledName("m", {{"k", "v"}, {"x", "y"}});
    EXPECT_NE(k1, k2);
}

TEST(MetricsPrometheus, RendersOneTypeLinePerFamilyAndEscapes)
{
    obs::MetricsRegistry registry("test");
    registry.counter("serving.requests", {{"tenant", "a\"b"}}).inc(3.0);
    registry.counter("serving.requests", {{"tenant", "plain"}}).inc(1.0);
    registry.gauge("queue.depth").set(5.0);
    // A family whose sanitized name sorts *between* the bare counter
    // name and its labeled variants ('_' < '{') -- the classic
    // interleaving trap for TYPE-line grouping.
    registry.counter("serving.requests_total_extra").inc();
    for (int i = 0; i < 100; ++i)
        registry.observe("latency.ms", static_cast<double>(i), 0.0, 100.0,
                         100, {{"tenant", "plain"}});

    const std::string text = registry.toPrometheus();

    // Exactly one TYPE line per family, and every sample line parses as
    // name{labels} value (or name value).
    std::set<std::string> type_lines;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        if (line.rfind("# TYPE ", 0) == 0) {
            EXPECT_TRUE(type_lines.insert(line).second)
                << "duplicate TYPE line: " << line;
            continue;
        }
        ASSERT_FALSE(line[0] == '#') << "unexpected comment: " << line;
        const size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string name_part = line.substr(0, space);
        EXPECT_FALSE(name_part.empty());
        // Metric names contain only [a-zA-Z0-9_:] up to '{'.
        for (char c : name_part) {
            if (c == '{')
                break;
            EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':')
                << "bad name char in: " << line;
        }
    }

    EXPECT_NE(text.find("# TYPE serving_requests counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE serving_requests_total_extra counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE latency_ms summary"), std::string::npos);
    EXPECT_NE(text.find("tenant=\"a\\\"b\""), std::string::npos);
    EXPECT_NE(text.find("latency_ms_count"), std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);

    // TYPE precedes its first sample for each family.
    EXPECT_LT(text.find("# TYPE serving_requests counter"),
              text.find("serving_requests{"));
}

// ---------------------------------------------------------------------------
// Wire protocol versioning
// ---------------------------------------------------------------------------

TEST(WireCompat, UntracedFramesAreByteIdenticalV1)
{
    using namespace serving;
    const std::vector<uint8_t> body = {1, 2, 3, 4};
    const std::vector<uint8_t> frame =
        encodeFrame(FrameType::Request, body, /*trace_id=*/0);
    ASSERT_EQ(frame.size(), kHeaderBytes + body.size());
    EXPECT_EQ(frame[4], kWireVersion);

    FrameHeader header;
    ASSERT_EQ(decodeHeader(frame.data(), kHeaderBytes, 1 << 20, header),
              WireStatus::Ok);
    EXPECT_EQ(header.version, kWireVersion);
    EXPECT_EQ(headerExtraBytes(header.version), 0u);
    EXPECT_EQ(header.traceId, 0u);
    EXPECT_EQ(header.bodyLen, body.size());
}

TEST(WireCompat, TracedFramesRoundTripTheTraceId)
{
    using namespace serving;
    const uint64_t trace_id = 0xDEADBEEFCAFEF00Dull;
    const std::vector<uint8_t> body = {9, 9};
    const std::vector<uint8_t> frame =
        encodeFrame(FrameType::Response, body, trace_id);
    ASSERT_EQ(frame.size(),
              kHeaderBytes + kTraceContextBytes + body.size());
    EXPECT_EQ(frame[4], kWireVersionTrace);

    FrameHeader header;
    ASSERT_EQ(decodeHeader(frame.data(), kHeaderBytes, 1 << 20, header),
              WireStatus::Ok);
    ASSERT_EQ(headerExtraBytes(header.version), kTraceContextBytes);
    ASSERT_EQ(decodeHeaderExtra(frame.data() + kHeaderBytes,
                                kTraceContextBytes, header),
              WireStatus::Ok);
    EXPECT_EQ(header.traceId, trace_id);
    EXPECT_EQ(header.bodyLen, body.size());
}

TEST(WireCompat, UnknownVersionsStayTyped)
{
    using namespace serving;
    std::vector<uint8_t> frame =
        encodeFrame(serving::FrameType::Request, {1, 2, 3});
    frame[4] = 4; // a future version this build does not know
                  // (3 is kWireVersionIntegrity, the ABFT verdict frame)
    FrameHeader header;
    EXPECT_EQ(decodeHeader(frame.data(), kHeaderBytes, 1 << 20, header),
              WireStatus::UnsupportedVersion);

    // Wrong-size extension bytes are BadFrame, not a crash.
    FrameHeader v2;
    v2.version = kWireVersionTrace;
    uint8_t short_extra[4] = {0};
    EXPECT_EQ(decodeHeaderExtra(short_extra, sizeof(short_extra), v2),
              WireStatus::BadFrame);
}

// ---------------------------------------------------------------------------
// Energy attribution
// ---------------------------------------------------------------------------

TEST(EnergyAttribution, ChipReplicasReportPerRequestJoules)
{
    serving::ServableModelSpec spec;
    ASSERT_TRUE(serving::parseServableId("mlp3/ann", spec));
    spec.epochs = 0;
    spec.trainImages = 64;
    ReplicaFactory factory =
        serving::ServableLoader::global().makeFactory(spec, {});
    std::unique_ptr<ChipReplica> replica = factory(0);

    SyntheticDigits data(1, spec.imageSize, /*seed=*/3);
    InferenceRequest request;
    request.image = data.image(0);
    const InferenceResult result = replica->run(request);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result.energy.crossbarJ, 0.0);
    EXPECT_GT(result.energy.adcJ, 0.0);
    EXPECT_GT(result.energy.driverJ, 0.0);
    EXPECT_GT(result.energy.total(), 0.0);
    EXPECT_NEAR(result.energy.total(),
                result.energy.crossbarJ + result.energy.driverJ +
                    result.energy.adcJ + result.energy.neuronJ +
                    result.energy.nocJ,
                1e-18);

    // A second request bills only its own energy, not the cumulative
    // chip counters.
    const InferenceResult second = replica->run(request);
    ASSERT_TRUE(second.ok());
    EXPECT_NEAR(second.energy.total(), result.energy.total(),
                0.5 * result.energy.total());
}

TEST(EnergyAttribution, FunctionalReplicasReportZero)
{
    serving::ServableModelSpec spec;
    ASSERT_TRUE(serving::parseServableId("mlp3/ann", spec));
    spec.epochs = 0;
    spec.trainImages = 64;
    auto [net, quant] = serving::ServableLoader::global().quantized(spec);
    (void)quant;
    std::unique_ptr<ChipReplica> replica =
        makeFunctionalAnnReplicaFactory(net)(0);
    SyntheticDigits data(1, spec.imageSize, /*seed=*/3);
    InferenceRequest request;
    request.image = data.image(0);
    const InferenceResult result = replica->run(request);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.energy.empty());
}

// ---------------------------------------------------------------------------
// Admin endpoint
// ---------------------------------------------------------------------------

/** Blocking HTTP/1.0 GET against 127.0.0.1:@p port; returns status and
 *  body (empty body + status 0 on connection failure). */
std::pair<int, std::string>
httpGet(uint16_t port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {0, ""};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        return {0, ""};
    }
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
    std::string raw;
    char buf[4096];
    ssize_t got;
    while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        raw.append(buf, static_cast<size_t>(got));
    ::close(fd);

    int status = 0;
    const size_t space = raw.find(' ');
    if (space != std::string::npos)
        status = std::atoi(raw.c_str() + space + 1);
    const size_t blank = raw.find("\r\n\r\n");
    return {status,
            blank == std::string::npos ? "" : raw.substr(blank + 4)};
}

/**
 * Minimal structural JSON validation: quotes and escapes tracked,
 * braces/brackets balanced, no trailing garbage. Not a full parser --
 * enough to catch unescaped quotes, truncation and comma damage.
 */
bool
looksLikeValidJson(const std::string &text)
{
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    for (char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
        case '"': in_string = true; break;
        case '{': stack.push_back('}'); break;
        case '[': stack.push_back(']'); break;
        case '}':
        case ']':
            if (stack.empty() || stack.back() != c)
                return false;
            stack.pop_back();
            break;
        default: break;
        }
    }
    return !in_string && stack.empty() && !text.empty();
}

TEST(AdminEndpoint, ServesDefaultsAndTypedErrors)
{
    obs::MetricsRegistry::global().counter("telemetry.test.counter").inc();
    serving::AdminServer admin;
    admin.start();
    ASSERT_GT(admin.port(), 0);

    auto [metrics_status, metrics_body] = httpGet(admin.port(), "/metrics");
    EXPECT_EQ(metrics_status, 200);
    EXPECT_NE(metrics_body.find("telemetry_test_counter"),
              std::string::npos);

    auto [statusz_status, statusz_body] = httpGet(admin.port(), "/statusz");
    EXPECT_EQ(statusz_status, 200);
    EXPECT_TRUE(looksLikeValidJson(statusz_body));

    auto [healthz_status, healthz_body] = httpGet(admin.port(), "/healthz");
    EXPECT_EQ(healthz_status, 200);
    EXPECT_EQ(healthz_body, "ok\n");

    EXPECT_EQ(httpGet(admin.port(), "/nope").first, 404);
    EXPECT_GE(admin.requestsServed(), 4u);
    admin.stop();
}

// ---------------------------------------------------------------------------
// Full serving stack: statusz under load, SLO + energy via the server
// ---------------------------------------------------------------------------

serving::RegistryConfig
fastRegistry(const std::vector<std::string> &ids, size_t capacity)
{
    serving::RegistryConfig cfg;
    for (const std::string &id : ids) {
        serving::ServableModelSpec spec;
        EXPECT_TRUE(serving::parseServableId(id, spec));
        spec.epochs = 0;
        spec.trainImages = 64;
        cfg.catalog.push_back(spec);
    }
    cfg.residentCapacity = capacity;
    cfg.workersPerModel = 1;
    cfg.engine.queueCapacity = 64;
    cfg.engine.defaultTimesteps = 6;
    return cfg;
}

TEST(ServingTelemetry, StatuszStaysValidUnderConcurrentLoad)
{
    auto registry = std::make_shared<serving::ModelRegistry>(
        fastRegistry({"mlp3/ann"}, 1));
    serving::ServerConfig cfg;
    cfg.adminEnabled = true;
    cfg.slo.targetMs = 1000.0; // generous: outcomes should be "good"
    serving::ServingServer server(cfg, registry);
    server.start();
    ASSERT_GT(server.adminPort(), 0);

    SyntheticDigits data(4, 16, /*seed=*/3);
    std::atomic<bool> stop{false};
    std::thread traffic([&] {
        serving::ServingClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
        int i = 0;
        while (!stop.load()) {
            const serving::WireResponse reply = client.infer(
                "tenant-load", "mlp3", serving::WireMode::Ann,
                data.image(i++ % data.size()));
            EXPECT_EQ(reply.status, serving::WireStatus::Ok);
        }
        client.close();
    });

    for (int i = 0; i < 10; ++i) {
        auto [status, body] = httpGet(server.adminPort(), "/statusz");
        ASSERT_EQ(status, 200);
        EXPECT_TRUE(looksLikeValidJson(body)) << body;
        EXPECT_NE(body.find("\"models\""), std::string::npos);
        EXPECT_NE(body.find("\"tenants\""), std::string::npos);
        EXPECT_NE(body.find("\"slo\""), std::string::npos);
    }
    stop.store(true);
    traffic.join();

    // After traffic: the SLO cell exists and energy was attributed.
    const std::string statusz = server.statuszJson();
    EXPECT_TRUE(looksLikeValidJson(statusz));
    EXPECT_NE(statusz.find("\"tenant\":\"tenant-load\""),
              std::string::npos);

    const SloSnapshot snap =
        server.slo().snapshot("tenant-load", "mlp3/ann");
    EXPECT_GT(snap.good, 0.0);
    EXPECT_DOUBLE_EQ(snap.bad, 0.0);

    const double joules = obs::MetricsRegistry::global().counterValue(
        "telemetry.tenant.energy_j", {{"tenant", "tenant-load"}});
    const double inferences = obs::MetricsRegistry::global().counterValue(
        "telemetry.tenant.inferences", {{"tenant", "tenant-load"}});
    EXPECT_GT(inferences, 0.0);
    EXPECT_GT(joules, 0.0);

    // /metrics carries both the slo gauges and the energy counters.
    auto [m_status, m_body] = httpGet(server.adminPort(), "/metrics");
    EXPECT_EQ(m_status, 200);
    EXPECT_NE(m_body.find("slo_p99_ms"), std::string::npos);
    EXPECT_NE(m_body.find("telemetry_energy_j"), std::string::npos);

    server.stop();
    registry->shutdown();
}

TEST(ServingTelemetry, ClientErrorsLandExcludedInTheSlo)
{
    auto registry = std::make_shared<serving::ModelRegistry>(
        fastRegistry({"mlp3/ann"}, 1));
    serving::ServerConfig cfg;
    serving::ServingServer server(cfg, registry);
    server.start();

    serving::ServingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    SyntheticDigits data(1, 16, /*seed=*/3);
    const serving::WireResponse reply = client.infer(
        "tenant-x", "nosuch", serving::WireMode::Ann, data.image(0));
    EXPECT_EQ(reply.status, serving::WireStatus::UnknownModel);
    client.close();

    const SloSnapshot snap =
        server.slo().snapshot("tenant-x", "nosuch/ann");
    EXPECT_DOUBLE_EQ(snap.excluded, 1.0);
    EXPECT_DOUBLE_EQ(snap.bad, 0.0);
    EXPECT_FALSE(snap.budgetExhausted());

    server.stop();
    registry->shutdown();
}

// ---------------------------------------------------------------------------
// Cross-process trace flow
// ---------------------------------------------------------------------------

TEST(TraceFlow, ClientServerWorkerSpansShareOneFlowId)
{
    // Quiesce any session a prior test / NEBULA_TRACE left behind.
    obs::TraceSession::stop();

    auto registry = std::make_shared<serving::ModelRegistry>(
        fastRegistry({"mlp3/ann"}, 1));
    serving::ServerConfig cfg;
    serving::ServingServer server(cfg, registry);
    server.start();

    obs::TraceSession::start();
    {
        serving::ServingClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
        SyntheticDigits data(1, 16, /*seed=*/3);
        const serving::WireResponse reply = client.infer(
            "tenant-t", "mlp3", serving::WireMode::Ann, data.image(0));
        EXPECT_EQ(reply.status, serving::WireStatus::Ok);
        client.close();
    }
    server.stop();
    registry->shutdown();
    auto session = obs::TraceSession::stop();
    ASSERT_TRUE(session);

    std::set<uint64_t> start_ids;
    std::set<uint64_t> step_ids;
    std::set<uint64_t> end_ids;
    for (const auto &track : session->tracks()) {
        for (const auto &event : track.events) {
            if (event.phase == obs::TraceEvent::Phase::FlowStart)
                start_ids.insert(event.flowId);
            else if (event.phase == obs::TraceEvent::Phase::FlowStep)
                step_ids.insert(event.flowId);
            else if (event.phase == obs::TraceEvent::Phase::FlowEnd)
                end_ids.insert(event.flowId);
        }
    }
    ASSERT_EQ(start_ids.size(), 1u) << "one traced request, one flow";
    const uint64_t flow = *start_ids.begin();
    EXPECT_NE(flow, 0u);
    EXPECT_TRUE(step_ids.count(flow))
        << "server/worker must emit a flow step under the same id";
    EXPECT_TRUE(end_ids.count(flow))
        << "client must close the flow on the response";

    // The flow ids serialize with binding-point annotations.
    const std::string json = [&] {
        const std::string path = "/tmp/nebula_telemetry_flow_test.json";
        EXPECT_TRUE(session->writeJson(path));
        std::string text;
        FILE *f = std::fopen(path.c_str(), "rb");
        if (f) {
            char buf[4096];
            size_t got;
            while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
                text.append(buf, got);
            std::fclose(f);
        }
        std::remove(path.c_str());
        return text;
    }();
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

} // namespace
} // namespace nebula
