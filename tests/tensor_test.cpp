/**
 * @file
 * Tests for the Tensor container and the GEMM kernels.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gemm.hpp"
#include "nn/tensor.hpp"

namespace nebula {
namespace {

TEST(Tensor, ConstructZeroFilled)
{
    Tensor t({2, 3, 4, 5});
    EXPECT_EQ(t.size(), 120);
    EXPECT_EQ(t.rank(), 4);
    EXPECT_EQ(t.dim(2), 4);
    for (long long i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FourDAccessorRowMajor)
{
    Tensor t({2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 7.0f;
    EXPECT_EQ(t[1 * 60 + 2 * 20 + 3 * 5 + 4], 7.0f);
}

TEST(Tensor, TwoDAccessor)
{
    Tensor t({3, 4});
    t.at(2, 1) = 5.0f;
    EXPECT_EQ(t[9], 5.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 6});
    t.at(1, 5) = 3.0f;
    t.reshape({3, 4});
    EXPECT_EQ(t[11], 3.0f);
    EXPECT_EQ(t.dim(0), 3);
}

TEST(Tensor, FillAndScaleAndAdd)
{
    Tensor a({4});
    a.fill(2.0f);
    Tensor b({4});
    b.fill(3.0f);
    a.add(b).scale(2.0f);
    for (long long i = 0; i < 4; ++i)
        EXPECT_EQ(a[i], 10.0f);
}

TEST(Tensor, Reductions)
{
    Tensor t({4}, {1.0f, -5.0f, 3.0f, 1.0f});
    EXPECT_EQ(t.maxAbs(), 5.0f);
    EXPECT_EQ(t.max(), 3.0f);
    EXPECT_EQ(t.sum(), 0.0f);
    EXPECT_EQ(t.argmax(), 2);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(Tensor, ArgmaxRow)
{
    Tensor t({2, 3}, {0.f, 2.f, 1.f, 5.f, 4.f, 3.f});
    EXPECT_EQ(t.argmaxRow(0), 1);
    EXPECT_EQ(t.argmaxRow(1), 0);
}

TEST(Tensor, RandnStatistics)
{
    Rng rng(3);
    Tensor t({10000});
    t.randn(rng, 2.0f);
    EXPECT_NEAR(t.mean(), 0.0, 0.1);
}

TEST(Tensor, ShapeString)
{
    Tensor t({1, 3, 32, 32});
    EXPECT_EQ(t.shapeString(), "[1, 3, 32, 32]");
}

TEST(Tensor, CorrelationIdentity)
{
    Rng rng(4);
    Tensor a({100});
    a.randn(rng);
    EXPECT_NEAR(correlation(a, a), 1.0, 1e-9);
}

TEST(Tensor, CorrelationAntiAndZero)
{
    Rng rng(5);
    Tensor a({1000});
    a.randn(rng);
    Tensor b = a;
    b.scale(-2.0f);
    EXPECT_NEAR(correlation(a, b), -1.0, 1e-9);

    Tensor c({1000});
    c.randn(rng);
    EXPECT_NEAR(correlation(a, c), 0.0, 0.15);
}

TEST(Tensor, CorrelationOfConstantIsZero)
{
    Tensor a({10});
    a.fill(2.0f);
    Tensor b({10});
    b.fill(5.0f);
    EXPECT_DOUBLE_EQ(correlation(a, b), 0.0);
}

/** Naive reference O(MNK) multiply. */
void
referenceGemm(int M, int N, int K, const float *A, const float *B, float *C)
{
    for (int i = 0; i < M; ++i)
        for (int j = 0; j < N; ++j) {
            double acc = 0.0;
            for (int k = 0; k < K; ++k)
                acc += static_cast<double>(A[i * K + k]) * B[k * N + j];
            C[i * N + j] = static_cast<float>(acc);
        }
}

class GemmSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmSizes, MatchesReference)
{
    const auto [M, N, K] = GetParam();
    Rng rng(77);
    std::vector<float> A(static_cast<size_t>(M) * K), B(
        static_cast<size_t>(K) * N);
    for (auto &x : A)
        x = static_cast<float>(rng.gaussian());
    for (auto &x : B)
        x = static_cast<float>(rng.gaussian());

    std::vector<float> C(static_cast<size_t>(M) * N),
        ref(static_cast<size_t>(M) * N);
    gemm(M, N, K, A.data(), B.data(), C.data());
    referenceGemm(M, N, K, A.data(), B.data(), ref.data());
    for (size_t i = 0; i < C.size(); ++i)
        ASSERT_NEAR(C[i], ref[i], 1e-3f) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 33, 129),
                      std::make_tuple(128, 1, 200)));

TEST(Gemm, AccumulateAddsToExisting)
{
    const float A[2] = {1.0f, 2.0f};
    const float B[2] = {3.0f, 4.0f};
    float C[1] = {10.0f};
    gemm(1, 1, 2, A, B, C, true);
    EXPECT_FLOAT_EQ(C[0], 10.0f + 11.0f);
    gemm(1, 1, 2, A, B, C, false);
    EXPECT_FLOAT_EQ(C[0], 11.0f);
}

TEST(Gemm, TransAMatchesReference)
{
    const int M = 7, N = 5, K = 11;
    Rng rng(78);
    std::vector<float> At(static_cast<size_t>(K) * M),
        B(static_cast<size_t>(K) * N);
    for (auto &x : At)
        x = static_cast<float>(rng.gaussian());
    for (auto &x : B)
        x = static_cast<float>(rng.gaussian());

    // Build A (MxK) from At (KxM).
    std::vector<float> A(static_cast<size_t>(M) * K);
    for (int k = 0; k < K; ++k)
        for (int i = 0; i < M; ++i)
            A[i * K + k] = At[k * M + i];

    std::vector<float> C(static_cast<size_t>(M) * N),
        ref(static_cast<size_t>(M) * N);
    gemmTransA(M, N, K, At.data(), B.data(), C.data());
    referenceGemm(M, N, K, A.data(), B.data(), ref.data());
    for (size_t i = 0; i < C.size(); ++i)
        ASSERT_NEAR(C[i], ref[i], 1e-3f);
}

TEST(Gemm, TransBMatchesReference)
{
    const int M = 6, N = 9, K = 13;
    Rng rng(79);
    std::vector<float> A(static_cast<size_t>(M) * K),
        Bt(static_cast<size_t>(N) * K);
    for (auto &x : A)
        x = static_cast<float>(rng.gaussian());
    for (auto &x : Bt)
        x = static_cast<float>(rng.gaussian());

    std::vector<float> B(static_cast<size_t>(K) * N);
    for (int j = 0; j < N; ++j)
        for (int k = 0; k < K; ++k)
            B[k * N + j] = Bt[j * K + k];

    std::vector<float> C(static_cast<size_t>(M) * N),
        ref(static_cast<size_t>(M) * N);
    gemmTransB(M, N, K, A.data(), Bt.data(), C.data());
    referenceGemm(M, N, K, A.data(), B.data(), ref.data());
    for (size_t i = 0; i < C.size(); ++i)
        ASSERT_NEAR(C[i], ref[i], 1e-3f);
}

} // namespace
} // namespace nebula
