/**
 * @file
 * Training-engine tests: loss math, optimizer behaviour and end-to-end
 * convergence of small models on the synthetic datasets.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/datasets.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/pooling.hpp"
#include "nn/trainer.hpp"

namespace nebula {
namespace {

TEST(Loss, UniformLogitsGiveLogC)
{
    Tensor logits({2, 4});
    const LossResult r = softmaxCrossEntropy(logits, {0, 3});
    EXPECT_NEAR(r.loss, std::log(4.0), 1e-6);
}

TEST(Loss, ConfidentCorrectIsNearZero)
{
    Tensor logits({1, 3}, {20.0f, 0.0f, 0.0f});
    const LossResult r = softmaxCrossEntropy(logits, {0});
    EXPECT_LT(r.loss, 1e-6);
    EXPECT_EQ(r.correct, 1);
}

TEST(Loss, GradientSumsToZeroPerRow)
{
    Tensor logits({2, 5}, {1, 2, 3, 4, 5, -1, 0, 1, 0, -1});
    const LossResult r = softmaxCrossEntropy(logits, {2, 4});
    for (int n = 0; n < 2; ++n) {
        double s = 0.0;
        for (int c = 0; c < 5; ++c)
            s += r.grad.at(n, c);
        EXPECT_NEAR(s, 0.0, 1e-6);
    }
}

TEST(Loss, GradientMatchesNumerical)
{
    Tensor logits({1, 3}, {0.5f, -0.2f, 0.1f});
    const LossResult r = softmaxCrossEntropy(logits, {1});
    const float eps = 1e-3f;
    for (int c = 0; c < 3; ++c) {
        Tensor lp = logits, lm = logits;
        lp.at(0, c) += eps;
        lm.at(0, c) -= eps;
        const double num = (softmaxCrossEntropy(lp, {1}).loss -
                            softmaxCrossEntropy(lm, {1}).loss) /
                           (2 * eps);
        EXPECT_NEAR(r.grad.at(0, c), num, 1e-4);
    }
}

TEST(Trainer, StepMovesAgainstGradient)
{
    Rng rng(2);
    Network net("t");
    net.add<Linear>(2, 1, false)->initKaiming(rng);
    auto *fc = static_cast<Linear *>(&net.layer(0));
    fc->weight()[0] = 1.0f;
    fc->weight()[1] = 1.0f;

    // Manually set a gradient and step.
    net.zeroGrad();
    Tensor x({1, 2}, {1.0f, 0.0f});
    net.forward(x, true);
    Tensor g({1, 1}, {1.0f});
    net.backward(g);

    TrainConfig cfg;
    cfg.learningRate = 0.1;
    cfg.momentum = 0.0;
    cfg.weightDecay = 0.0;
    SgdTrainer trainer(cfg);
    trainer.step(net, 1);
    // dL/dw0 = x0 * g = 1 -> w0 decreases by lr.
    EXPECT_NEAR(fc->weight()[0], 0.9f, 1e-6f);
    EXPECT_NEAR(fc->weight()[1], 1.0f, 1e-6f);
}

TEST(Trainer, WeightDecayShrinksWeights)
{
    Rng rng(3);
    Network net("t");
    net.add<Linear>(1, 1, false);
    auto *fc = static_cast<Linear *>(&net.layer(0));
    fc->weight()[0] = 2.0f;

    net.zeroGrad(); // gradient zero; only decay acts
    TrainConfig cfg;
    cfg.learningRate = 0.1;
    cfg.momentum = 0.0;
    cfg.weightDecay = 0.5;
    SgdTrainer trainer(cfg);
    trainer.step(net, 1);
    EXPECT_NEAR(fc->weight()[0], 2.0f - 0.1f * 0.5f * 2.0f, 1e-6f);
}

TEST(Trainer, MlpLearnsSyntheticDigits)
{
    SyntheticDigits train_set(1200, 16, /*seed=*/100);
    SyntheticDigits test_set(300, 16, /*seed=*/200);

    Network net = buildMlp3(16, 1, 10, 42);
    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.batchSize = 32;
    cfg.learningRate = 0.08;
    SgdTrainer trainer(cfg);
    const double train_acc = trainer.train(net, train_set);
    EXPECT_GT(train_acc, 0.9);

    const double test_acc = evaluateAccuracy(net, test_set);
    EXPECT_GT(test_acc, 0.85);
}

TEST(Trainer, TinyConvNetLearnsDigits)
{
    SyntheticDigits train_set(800, 12, /*seed=*/101);
    SyntheticDigits test_set(200, 12, /*seed=*/201);

    Rng rng(7);
    Network net("tinyconv");
    net.add<Conv2d>(1, 6, 3, 1, 1)->initKaiming(rng);
    net.add<Relu>();
    net.add<AvgPool2d>(2);
    net.add<Flatten>();
    net.add<Linear>(6 * 6 * 6, 10)->initKaiming(rng);

    TrainConfig cfg;
    cfg.epochs = 5;
    cfg.batchSize = 32;
    cfg.learningRate = 0.08;
    SgdTrainer trainer(cfg);
    trainer.train(net, train_set);
    EXPECT_GT(evaluateAccuracy(net, test_set), 0.8);
}

TEST(Trainer, AccuracyEvaluatorHonorsMaxSamples)
{
    SyntheticDigits data(50, 12, 5);
    Network net = buildMlp3(12, 1, 10, 6);
    const double acc = evaluateAccuracy(net, data, 10);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

} // namespace
} // namespace nebula
